"""Terms of the Datalog language: variables and constants.

Datalog terms are flat (no function symbols), so a term is either a
:class:`Variable` or a :class:`Constant`.  Both are immutable, hashable
value objects; substitutions are plain ``dict[Variable, Constant]``.
"""

from __future__ import annotations

from typing import Union


class Variable:
    """A logical variable, identified by its name.

    By Datalog convention a variable name starts with an uppercase letter
    or an underscore (the parser enforces this; the constructor does not,
    so rewrites are free to invent names like ``$cnt0``).
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name:
            raise ValueError("variable name must be non-empty")
        self.name = name

    def __eq__(self, other):
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self):
        return hash(("var", self.name))

    def __repr__(self):
        return f"Variable({self.name!r})"

    def __str__(self):
        return self.name

    @property
    def is_variable(self) -> bool:
        return True

    @property
    def is_constant(self) -> bool:
        return False


class Constant:
    """A constant value.

    The payload may be any hashable Python value (strings, ints, tuples);
    the engine only ever compares constants for equality and hashes them.
    """

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __eq__(self, other):
        return isinstance(other, Constant) and self.value == other.value

    def __hash__(self):
        return hash(("const", self.value))

    def __repr__(self):
        return f"Constant({self.value!r})"

    def __str__(self):
        if isinstance(self.value, str):
            return self.value
        return repr(self.value)

    @property
    def is_variable(self) -> bool:
        return False

    @property
    def is_constant(self) -> bool:
        return True


Term = Union[Variable, Constant]


def make_term(value) -> Term:
    """Coerce a Python value into a term.

    Existing terms pass through; strings that look like Datalog variables
    (leading uppercase or underscore) become variables; everything else
    becomes a constant.  This is a convenience for building rules in
    Python code without spelling out ``Variable``/``Constant``.

    >>> make_term("X")
    Variable('X')
    >>> make_term("alice")
    Constant('alice')
    >>> make_term(3)
    Constant(3)
    """
    if isinstance(value, (Variable, Constant)):
        return value
    if isinstance(value, str) and value and (value[0].isupper() or value[0] == "_"):
        return Variable(value)
    return Constant(value)


def is_ground(terms) -> bool:
    """Return True when every term in the iterable is a constant."""
    return all(term.is_constant for term in terms)


def variables_of(terms):
    """Yield the distinct variables occurring in ``terms``, in order."""
    seen = set()
    for term in terms:
        if term.is_variable and term not in seen:
            seen.add(term)
            yield term
