"""A bottom-up Datalog engine: the deductive-database substrate.

This subpackage provides everything the paper assumes from an LDL/NAIL!
style system: a textual Datalog language, safety checking, stratified
negation, arithmetic builtins, naive and semi-naive fixpoint evaluation
over cost-instrumented relations, and the two classical rewritings the
magic counting methods combine — generalized magic sets and counting.
"""

from .aggregates import aggregate, top_k
from .atom import Atom, BuiltinAtom, Literal, atom, fact, var
from .adornment import adorn_program, adornment_from_goal
from .builtins import arithmetic, comparison
from .counting_rewrite import counting_rewrite
from .database import Database
from .engine import CompiledProgram, JoinKernel, compile_program, compile_rule
from .evaluation import (
    DEFAULT_ENGINE,
    DEFAULT_MAX_ITERATIONS,
    SEMINAIVE_ENGINES,
    answer_tuples,
    naive_evaluate,
    seminaive_evaluate,
)
from .incremental import insert_and_maintain
from .linear import LinearRecursion, analyze_linear
from .maintenance import MaintenanceReport, MaintenanceState, delete_and_maintain
from .lint import Diagnostic, lint_program
from .magic_rewrite import magic_rewrite
from .parser import parse_atom, parse_program, parse_rule
from .planner import optimize_program, optimize_rule
from .program import Program
from .provenance import ProofNode, Provenance, evaluate_with_provenance
from .qsq import QSQEvaluator, qsq_answer_tuples
from .relation import CostCounter, Relation
from .rule import Rule, rule
from .stratify import stratify, strongly_connected_components
from .supplementary import supplementary_magic_rewrite
from .transform import (
    eliminate_dead_rules,
    rename_predicate,
    unfold_all_views,
    unfold_predicate,
)
from .term import Constant, Variable, make_term

__all__ = [
    "Atom",
    "BuiltinAtom",
    "CompiledProgram",
    "Constant",
    "CostCounter",
    "Database",
    "DEFAULT_ENGINE",
    "DEFAULT_MAX_ITERATIONS",
    "Diagnostic",
    "JoinKernel",
    "SEMINAIVE_ENGINES",
    "LinearRecursion",
    "Literal",
    "MaintenanceReport",
    "MaintenanceState",
    "ProofNode",
    "Program",
    "Provenance",
    "QSQEvaluator",
    "Relation",
    "Rule",
    "Variable",
    "adorn_program",
    "adornment_from_goal",
    "aggregate",
    "analyze_linear",
    "answer_tuples",
    "arithmetic",
    "atom",
    "comparison",
    "compile_program",
    "compile_rule",
    "counting_rewrite",
    "delete_and_maintain",
    "eliminate_dead_rules",
    "evaluate_with_provenance",
    "fact",
    "insert_and_maintain",
    "lint_program",
    "magic_rewrite",
    "make_term",
    "naive_evaluate",
    "optimize_program",
    "optimize_rule",
    "parse_atom",
    "parse_program",
    "parse_rule",
    "qsq_answer_tuples",
    "rename_predicate",
    "rule",
    "seminaive_evaluate",
    "stratify",
    "strongly_connected_components",
    "supplementary_magic_rewrite",
    "top_k",
    "unfold_all_views",
    "unfold_predicate",
    "var",
]
