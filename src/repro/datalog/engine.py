"""Compiled join-kernel execution engine for the semi-naive fixpoint.

The interpreter in :mod:`repro.datalog.evaluation` evaluates rule bodies
tuple-at-a-time through recursive generators: every matched tuple copies
a substitution dict (:func:`~repro.datalog.unify.match_tuple`), rebuilds
the remaining-element list, and re-picks the next body element.  All of
that work is redundant — the element the scheduler picks depends only on
*which* variables are bound, never on their values, so the whole join
order of a rule is a static property.  This module exploits that: each
rule body is lowered **once** per (program, stratum) into a
:class:`JoinKernel` — a flat chain of closures over a fixed register
array.  Index patterns, constant tests, intra-literal equality checks
and head construction are all precomputed; executing the kernel is a
bare nested loop whose only per-tuple work is writing tuple fields into
register slots.

Two planning modes choose the join order:

* ``"mirror"`` (default) — statically replay the interpreter's own
  scheduling (:func:`~repro.datalog.evaluation._ready_element_index`),
  including the semi-naive delta pinning of ``_PinnedFirstSource``.
  Because the kernels read EDB/IDB state exclusively through the
  charged storage primitives — :meth:`Relation.probe` (which *is*
  :meth:`Relation.lookup` with the pattern parsed at compile time
  instead of per call) and :meth:`Relation.contains` — a mirror-planned
  kernel issues *bit-for-bit the same probe sequence* as the
  interpreter: answers **and** :class:`CostCounter` snapshots are
  identical.  The paper's retrieval-cost accounting survives the
  compilation untouched.
* ``"cost"`` — order each body once with the cost-based planner
  (:mod:`repro.datalog.planner` statistics from the database the
  program is compiled against).  Same answers, possibly fewer
  retrievals; costs are then those of the *chosen* plan, so only use it
  where the paper's cost model is not being measured against the
  interpreter's join order.

The semi-naive fixpoint driver (:meth:`CompiledProgram.run`) mirrors the
interpreted driver round for round — same round-0 pass, same per-round
delta relations (named ``Δ<pred>`` and charged to the same counter),
same confirmation pass — so the two engines are interchangeable
oracles.  The delta flush uses :meth:`Relation.add_new`, the bulk
insertion path that maintains every lazy index in one pass.
"""

from __future__ import annotations

import threading
import time
import weakref
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import EvaluationError, UnsafeQueryError
from .atom import Atom, BuiltinAtom, Literal
from .builtins import evaluate_builtin, output_variables
from .database import Database
from .evaluation import (
    DEFAULT_MAX_ITERATIONS,
    _arity_map,
    _ready_element_index,
)
from .planner import order_body_elements, relation_sizes
from .program import Program
from .relation import Relation
from .rule import Rule
from .term import Constant, Variable

PLAN_MIRROR = "mirror"
PLAN_COST = "cost"
PLAN_MODES = (PLAN_MIRROR, PLAN_COST)


class _UnsafeTail:
    """Marker for a body suffix the scheduler could not make evaluable.

    The interpreter raises :class:`EvaluationError` when (and only when)
    evaluation actually *reaches* the stuck suffix; compiling the raise
    into the chain preserves that behaviour exactly — a rule whose outer
    joins produce no bindings never trips it.
    """

    __slots__ = ("elements",)

    def __init__(self, elements):
        self.elements = tuple(elements)


def _static_schedule(elements: Sequence, bound: Set[Variable]) -> List:
    """Replay the interpreter's per-binding scheduling, statically.

    ``_ready_element_index`` inspects only the *set* of bound variables.
    A positive literal always binds all its variables, an ``is`` builtin
    always binds its (statically known) target, and nothing else binds
    anything — so the interpreter's "dynamic" order is a pure function
    of the element list, computable once at compile time.
    """
    remaining = list(elements)
    ordered: List = []
    bound = set(bound)
    while remaining:
        index = _ready_element_index(remaining, bound)
        if index < 0:
            ordered.append(_UnsafeTail(remaining))
            break
        element = remaining.pop(index)
        ordered.append(element)
        if isinstance(element, BuiltinAtom):
            bound |= output_variables(element)
        elif not element.negated:
            bound.update(element.variables())
    return ordered


class JoinKernel:
    """One rule body compiled to a closure chain over a register file.

    ``relations`` lists the ``(predicate, arity)`` pair of every
    relation-consuming op in chain order; :meth:`execute` takes the
    resolved :class:`Relation` objects in that order (the semi-naive
    driver substitutes a delta relation at ``delta_index``) and appends
    derived head tuples to ``out``.
    """

    __slots__ = (
        "rule", "order", "relations", "delta_index", "num_slots", "_entry",
        "ops",
    )

    def __init__(self, rule, order, relations, delta_index, num_slots, entry,
                 ops=()):
        self.rule = rule
        self.order = order
        self.relations = relations
        self.delta_index = delta_index
        self.num_slots = num_slots
        self._entry = entry
        # The flat op list the closure chain was folded from.  The
        # columnar batch executor re-interprets these same ops over
        # column vectors, so both engines share one compiled plan.
        self.ops = tuple(ops)

    def execute(self, relations: Sequence[Relation], out: List[Tuple]) -> None:
        """Run the kernel against resolved relations, appending to ``out``."""
        self._entry([None] * self.num_slots, relations, out)

    def run(self, database: Database) -> List[Tuple]:
        """Convenience: resolve relations from ``database`` and execute."""
        relations = [
            database.relation_or_empty(predicate, arity)
            for predicate, arity in self.relations
        ]
        out: List[Tuple] = []
        self.execute(relations, out)
        return out

    def __repr__(self):
        return (
            f"JoinKernel({self.rule.head}, ops={len(self.order)}, "
            f"slots={self.num_slots})"
        )


def _atom_template(terms, slots, bound):
    """Split atom terms into a constant template plus slot fill lists."""
    template = [None] * len(terms)
    fills = []  # (position, slot): bound variable -> pattern/tuple position
    for position, term in enumerate(terms):
        if term.is_constant:
            template[position] = term.value
        elif term in bound:
            fills.append((position, slots[term]))
    return template, fills


def compile_kernel(
    rule: Rule,
    elements: Sequence,
    pinned_predicate: Optional[str] = None,
) -> JoinKernel:
    """Lower one scheduled body into a :class:`JoinKernel`.

    ``elements`` must already be in execution order (see
    :func:`_static_schedule`); ``pinned_predicate`` marks the predicate
    whose *first* relation-consuming occurrence reads the semi-naive
    delta — the static equivalent of the interpreter's
    ``_PinnedFirstSource``.
    """
    slots: Dict[Variable, int] = {}
    bound: Set[Variable] = set()
    rel_specs: List[Tuple[str, int]] = []
    delta_index: Optional[int] = None
    ops: List[Tuple] = []
    stuck = False

    for element in elements:
        if isinstance(element, _UnsafeTail):
            ops.append(("unsafe", element.elements))
            stuck = True
            break
        if isinstance(element, BuiltinAtom):
            in_pairs = tuple(
                (v, slots[v]) for v in element.variables() if v in bound
            )
            out_pairs = []
            for v in output_variables(element):
                if v not in bound:
                    slot = slots.setdefault(v, len(slots))
                    out_pairs.append((v, slot))
                    bound.add(v)
            ops.append(("builtin", element, in_pairs, tuple(out_pairs)))
            continue

        arity = len(element.terms)
        template, fills = _atom_template(element.terms, slots, bound)
        rel_index = len(rel_specs)
        rel_specs.append((element.predicate, arity))
        if (
            pinned_predicate is not None
            and delta_index is None
            and element.predicate == pinned_predicate
        ):
            delta_index = rel_index

        if element.negated:
            ops.append(("negcheck", rel_index, template, tuple(fills)))
            continue

        binds = []  # (position, slot): tuple position -> fresh register
        checks = []  # (position, slot): intra-literal repeated variable
        seen_here: Set[Variable] = set()
        for position, term in enumerate(element.terms):
            if term.is_constant or term in bound:
                continue
            if term in seen_here:
                checks.append((position, slots[term]))
            else:
                slot = slots.setdefault(term, len(slots))
                binds.append((position, slot))
                seen_here.add(term)
        bound.update(seen_here)
        # Precompute the probe plan: the (positions, key) pair that
        # Relation.lookup would derive from the pattern on every call,
        # derived here once.  ``key_fills`` maps register slots into the
        # key positions that carry join values at run time.
        fill_map = dict(fills)
        positions = []
        key_template = []
        key_fills = []
        for position, value in enumerate(template):
            if value is not None:
                positions.append(position)
                key_template.append(value)
            elif position in fill_map:
                positions.append(position)
                key_template.append(None)
                key_fills.append((len(key_template) - 1, fill_map[position]))
        ops.append(
            (
                "scan",
                rel_index,
                tuple(positions),
                key_template,
                tuple(key_fills),
                tuple(binds),
                tuple(checks),
            )
        )

    if not stuck:
        missing = [
            t for t in rule.head.terms if t.is_variable and t not in bound
        ]
        if missing:
            ops.append(("unbound_head", missing[0], rule.head))
        else:
            template, fills = _atom_template(rule.head.terms, slots, bound)
            ops.append(("emit", template, tuple(fills)))

    entry = _build_chain(ops)
    return JoinKernel(
        rule, tuple(elements), tuple(rel_specs), delta_index, len(slots),
        entry, ops,
    )


def _build_chain(ops: List[Tuple]):
    """Fold the op list (innermost last) into one closure chain."""
    step = None
    for op in reversed(ops):
        kind = op[0]
        if kind == "emit":
            _, template, fills = op
            if fills:

                def step(regs, rels, out, _t=template, _f=fills):
                    row = _t.copy()
                    for position, slot in _f:
                        row[position] = regs[slot]
                    out.append(tuple(row))

            else:
                constant_row = tuple(template)

                def step(regs, rels, out, _row=constant_row):
                    out.append(_row)

        elif kind == "scan":
            _, rel_index, positions, key_template, key_fills, binds, checks = op
            static_key = None if key_fills else tuple(key_template)
            whole_key_filled = len(key_fills) == len(key_template)
            if not checks and len(binds) == 1 and static_key is not None:
                # Constant probe pattern, one fresh variable: the
                # innermost loop of a linear join, e.g. scanning a delta.
                (b_pos, b_slot) = binds[0]

                def step(
                    regs, rels, out,
                    _ri=rel_index, _pos=positions, _key=static_key,
                    _bp=b_pos, _bs=b_slot, _next=step,
                ):
                    for tup in rels[_ri].probe(_pos, _key):
                        regs[_bs] = tup[_bp]
                        _next(regs, rels, out)

            elif (
                not checks
                and len(binds) == 1
                and whole_key_filled
                and len(key_fills) == 1
            ):
                # One join column from a register, one fresh variable:
                # the canonical hash-join step (edge(X, Y) with X bound).
                (_ki, f_slot) = key_fills[0]
                (b_pos, b_slot) = binds[0]

                def step(
                    regs, rels, out,
                    _ri=rel_index, _pos=positions, _fs=f_slot,
                    _bp=b_pos, _bs=b_slot, _next=step,
                ):
                    for tup in rels[_ri].probe(_pos, (regs[_fs],)):
                        regs[_bs] = tup[_bp]
                        _next(regs, rels, out)

            elif not checks and len(binds) == 1 and whole_key_filled:
                fill_slots = tuple(slot for _ki, slot in key_fills)
                (b_pos, b_slot) = binds[0]

                def step(
                    regs, rels, out,
                    _ri=rel_index, _pos=positions, _fs=fill_slots,
                    _bp=b_pos, _bs=b_slot, _next=step,
                ):
                    key = tuple(regs[s] for s in _fs)
                    for tup in rels[_ri].probe(_pos, key):
                        regs[_bs] = tup[_bp]
                        _next(regs, rels, out)

            else:

                def step(
                    regs, rels, out,
                    _ri=rel_index, _pos=positions, _kt=key_template,
                    _kf=key_fills, _b=binds, _c=checks, _sk=static_key,
                    _next=step,
                ):
                    if _sk is None:
                        key_row = _kt.copy()
                        for key_index, slot in _kf:
                            key_row[key_index] = regs[slot]
                        key = tuple(key_row)
                    else:
                        key = _sk
                    if _c:
                        for tup in rels[_ri].probe(_pos, key):
                            for position, slot in _b:
                                regs[slot] = tup[position]
                            for position, slot in _c:
                                if tup[position] != regs[slot]:
                                    break
                            else:
                                _next(regs, rels, out)
                    else:
                        for tup in rels[_ri].probe(_pos, key):
                            for position, slot in _b:
                                regs[slot] = tup[position]
                            _next(regs, rels, out)

        elif kind == "negcheck":
            _, rel_index, template, fills = op
            constant_pattern = None if fills else tuple(template)

            def step(
                regs, rels, out,
                _ri=rel_index, _t=template, _f=fills,
                _cp=constant_pattern, _next=step,
            ):
                if _cp is None:
                    row = _t.copy()
                    for position, slot in _f:
                        row[position] = regs[slot]
                    pattern = tuple(row)
                else:
                    pattern = _cp
                if not rels[_ri].contains(pattern):
                    _next(regs, rels, out)

        elif kind == "builtin":
            _, builtin, in_pairs, out_pairs = op

            def step(
                regs, rels, out,
                _bi=builtin, _in=in_pairs, _out=out_pairs, _next=step,
            ):
                theta = {v: Constant(regs[slot]) for v, slot in _in}
                for extended in evaluate_builtin(_bi, theta):
                    for v, slot in _out:
                        regs[slot] = extended[v].value
                    _next(regs, rels, out)

        elif kind == "unbound_head":
            _, term, head = op

            def step(regs, rels, out, _term=term, _head=head):
                raise ValueError(
                    f"unbound variable {_term} instantiating {_head}"
                )

        elif kind == "unsafe":
            _, elements = op

            def step(regs, rels, out, _elements=elements):
                raise EvaluationError(
                    "no evaluable body element; rule is unsafe: "
                    + ", ".join(str(e) for e in _elements)
                )

        else:  # pragma: no cover - compiler invariant
            raise EvaluationError(f"unknown kernel op {kind!r}")
    return step


def compile_rule(
    rule: Rule,
    plan: str = PLAN_MIRROR,
    sizes: Optional[Dict[str, int]] = None,
) -> JoinKernel:
    """Compile a standalone rule body (no delta differentiation)."""
    ordered = _plan_order(rule.body, plan, sizes)
    return compile_kernel(rule, _static_schedule(ordered, set()))


def _plan_order(elements, plan: str, sizes: Optional[Dict[str, int]]):
    if plan == PLAN_MIRROR:
        return list(elements)
    return order_body_elements(elements, sizes or {})


class CompiledRule:
    """One rule's kernels: the base kernel plus per-position delta variants.

    ``delta_variants`` holds ``(delta_predicate, kernel)`` per positive
    occurrence of a stratum predicate, in body-position order — the same
    order the interpreted driver differentiates them in.
    """

    __slots__ = ("rule", "base", "delta_variants")

    def __init__(self, rule: Rule, base: JoinKernel, delta_variants):
        self.rule = rule
        self.base = base
        self.delta_variants = tuple(delta_variants)

    def __repr__(self):
        return (
            f"CompiledRule({self.rule.head}, "
            f"deltas={len(self.delta_variants)})"
        )


class CompiledStratum:
    """The compiled rules of one stratum, split like the interpreter."""

    __slots__ = ("predicates", "rules", "recursive_rules")

    def __init__(self, predicates, rules, recursive_rules):
        self.predicates = frozenset(predicates)
        self.rules = tuple(rules)
        self.recursive_rules = tuple(recursive_rules)


class CompiledProgram:
    """A program lowered to join kernels, once per (program, stratum).

    Construction performs the whole compile phase: safety checking,
    stratification, join-order planning, and kernel lowering for every
    rule plus every semi-naive delta variant.  The result is immutable
    and reusable across databases (``"mirror"`` plan) or tied to the
    statistics of the database it was planned against (``"cost"`` plan);
    :meth:`run` executes the semi-naive fixpoint against any database.
    """

    def __init__(
        self,
        program: Program,
        database: Optional[Database] = None,
        plan: str = PLAN_MIRROR,
    ):
        if plan not in PLAN_MODES:
            raise ValueError(
                f"unknown plan mode {plan!r}; expected one of {PLAN_MODES}"
            )
        started = time.perf_counter()
        program.check_safety()
        self.program = program
        self.plan = plan
        self.rules_signature = tuple(program.rules)
        self.arities = _arity_map(program)
        sizes = (
            relation_sizes(database)
            if (plan == PLAN_COST and database is not None)
            else None
        )
        self.strata: List[CompiledStratum] = []
        kernel_count = 0
        from .stratify import stratify

        for stratum in stratify(program):
            stratum_rules = [
                r for r in program.rules if r.head.predicate in stratum
            ]
            compiled_rules = []
            recursive_rules = []
            for rule in stratum_rules:
                ordered = _plan_order(rule.body, plan, sizes)
                base = compile_kernel(rule, _static_schedule(ordered, set()))
                kernel_count += 1
                recursive_positions = [
                    i
                    for i, e in enumerate(rule.body)
                    if isinstance(e, Literal)
                    and not e.negated
                    and e.predicate in stratum
                ]
                variants = []
                for position in recursive_positions:
                    body = list(rule.body)
                    pinned = body[position]
                    if plan == PLAN_MIRROR:
                        # The interpreted driver swaps the delta
                        # occurrence to the front and lets the scheduler
                        # run on the swapped list; replay exactly that.
                        body[0], body[position] = body[position], body[0]
                        ordered_body = body
                    else:
                        rest = body[:position] + body[position + 1 :]
                        ordered_body = [pinned] + order_body_elements(
                            rest,
                            sizes or {},
                            bound=set(pinned.variables()),
                        )
                    kernel = compile_kernel(
                        rule,
                        _static_schedule(ordered_body, set()),
                        pinned_predicate=pinned.predicate,
                    )
                    kernel_count += 1
                    variants.append((pinned.predicate, kernel))
                compiled = CompiledRule(rule, base, variants)
                compiled_rules.append(compiled)
                if variants:
                    recursive_rules.append(compiled)
            self.strata.append(
                CompiledStratum(stratum, compiled_rules, recursive_rules)
            )
        self.kernel_count = kernel_count
        self.compile_seconds = time.perf_counter() - started

    # --- execution ----------------------------------------------------

    def _resolve(self, kernel: JoinKernel, database: Database, delta=None):
        relations = []
        delta_index = kernel.delta_index
        for index, (predicate, arity) in enumerate(kernel.relations):
            if delta is not None and index == delta_index:
                relations.append(delta)
            else:
                relations.append(database.relation_or_empty(predicate, arity))
        return relations

    def run(
        self,
        database: Database,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
    ) -> Database:
        """Semi-naive fixpoint over the compiled kernels.

        Mirrors the interpreted driver round for round: derived facts
        land in ``database`` in place and the database is returned for
        chaining.
        """
        arities = self.arities
        for stratum in self.strata:
            for compiled in stratum.rules:
                head = compiled.rule.head
                database.relation_or_empty(head.predicate, head.arity)

            deltas: Dict[str, Set[Tuple]] = {
                p: set() for p in stratum.predicates
            }

            # Round 0: every rule once against the current database.
            for compiled in stratum.rules:
                head = compiled.rule.head
                head_relation = database.relation_or_empty(
                    head.predicate, head.arity
                )
                out: List[Tuple] = []
                compiled.base.execute(
                    self._resolve(compiled.base, database), out
                )
                for tup in out:
                    if head_relation.add(tup):
                        deltas[head.predicate].add(tup)

            iterations = 0
            while any(deltas.values()):
                iterations += 1
                if iterations > max_iterations:
                    raise UnsafeQueryError(
                        f"seminaive fixpoint exceeded {max_iterations} "
                        f"iterations on stratum {sorted(stratum.predicates)}"
                    )
                delta_relations: Dict[str, Relation] = {}
                for predicate, tuples in deltas.items():
                    if not tuples:
                        continue
                    delta_relations[predicate] = Relation(
                        f"Δ{predicate}",
                        arities.get(predicate, len(next(iter(tuples)))),
                        tuples,
                        counter=database.counter,
                    )
                next_deltas: Dict[str, Set[Tuple]] = {
                    p: set() for p in stratum.predicates
                }
                for compiled in stratum.recursive_rules:
                    head = compiled.rule.head
                    head_relation = database.relation_or_empty(
                        head.predicate, head.arity
                    )
                    bucket = next_deltas[head.predicate]
                    for delta_predicate, kernel in compiled.delta_variants:
                        delta = delta_relations.get(delta_predicate)
                        if delta is None:
                            continue
                        out = []
                        kernel.execute(
                            self._resolve(kernel, database, delta), out
                        )
                        for tup in out:
                            if tup not in head_relation and tup not in bucket:
                                bucket.add(tup)
                for predicate, tuples in next_deltas.items():
                    if not tuples:
                        continue
                    relation = database.relation_or_empty(
                        predicate, arities.get(predicate, len(next(iter(tuples))))
                    )
                    # Bulk flush: one dedupe pass against the stored
                    # tuples, every lazy index extended in one sweep.
                    next_deltas[predicate] = set(relation.add_new(tuples))
                deltas = next_deltas
        return database

    def describe(self) -> Dict[str, object]:
        return {
            "plan": self.plan,
            "strata": len(self.strata),
            "kernels": self.kernel_count,
            "compile_ms": self.compile_seconds * 1000.0,
        }

    def __repr__(self):
        return (
            f"CompiledProgram(plan={self.plan!r}, "
            f"strata={len(self.strata)}, kernels={self.kernel_count})"
        )


class _KernelCache:
    """Process-wide memo of mirror-planned compiled programs.

    Keyed by program identity (mirror plans are database-independent,
    so one compilation serves every run of the same program object);
    entries are revalidated against the program's current rule tuple so
    in-place mutation — ``Program.add_rule`` — can never serve stale
    kernels.  Shared across threads: the service layer compiles from
    worker threads, so every read/insert happens under ``_lock``.

    Eviction is lazy — a dead program's entry is dropped when its id is
    revisited or when the size limit clears the table.  Deliberately no
    ``weakref.ref`` finalizer callback: the GC may run one at any
    allocation point, including while this thread already holds the
    non-reentrant ``_lock``, which self-deadlocks.
    """

    _LIMIT = 128

    def __init__(self):
        self._lock = threading.Lock()
        self._entries: Dict[int, Tuple] = {}  # guarded-by: _lock

    def get(self, program: Program) -> Optional[CompiledProgram]:
        with self._lock:
            entry = self._entries.get(id(program))
            if entry is None:
                return None
            ref, compiled = entry
            if ref() is not program:
                # The id was recycled by a dead program; drop the entry.
                del self._entries[id(program)]
                return None
        if compiled.rules_signature != tuple(program.rules):
            with self._lock:
                self._entries.pop(id(program), None)
            return None
        return compiled

    def put(self, program: Program, compiled: CompiledProgram) -> None:
        with self._lock:
            if len(self._entries) >= self._LIMIT:
                self._entries.clear()
            self._entries[id(program)] = (weakref.ref(program), compiled)


_kernel_cache = _KernelCache()


def compile_program(
    program: Program,
    database: Optional[Database] = None,
    plan: str = PLAN_MIRROR,
) -> CompiledProgram:
    """Compile ``program`` to join kernels, memoizing mirror plans.

    Mirror-planned kernels are independent of any database, so repeated
    fixpoints over the same :class:`Program` object (incremental
    maintenance, batch serving, test oracles) pay for lowering once.
    Cost-planned kernels embed the statistics of ``database`` and are
    compiled fresh each call — cache them at the call site (the service
    layer stores them on its :class:`~repro.service.plan.CompiledPlan`).
    """
    if plan == PLAN_MIRROR:
        cached = _kernel_cache.get(program)
        if cached is not None:
            return cached
    compiled = CompiledProgram(program, database=database, plan=plan)
    if plan == PLAN_MIRROR:
        _kernel_cache.put(program, compiled)
    return compiled


def compiled_seminaive_evaluate(
    program: Program,
    database: Database,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    plan: str = PLAN_MIRROR,
    compiled: Optional[CompiledProgram] = None,
) -> Database:
    """Entry point used by :func:`repro.datalog.evaluation.seminaive_evaluate`.

    ``compiled`` lets callers that already hold kernels (the serving
    layer) skip the cache lookup entirely.
    """
    if compiled is None:
        compiled = compile_program(program, database=database, plan=plan)
    return compiled.run(database, max_iterations)


def materialize_conjunction(
    elements: Sequence,
    head_terms: Sequence,
    database: Database,
    plan: str = PLAN_MIRROR,
) -> List[Tuple]:
    """Evaluate one conjunctive body and project ``head_terms`` rows.

    Used by the CSL materializer: builds a synthetic single-use rule
    whose head carries the projection, compiles it, and runs it against
    ``database``.  Raises :class:`ValueError` (unbound projection term)
    exactly where the interpreted path would fail to ground the term.
    """
    head = Atom("$conjunction", tuple(head_terms))
    kernel = compile_rule(Rule(head, tuple(elements)), plan=plan)
    if database.backend == "columnar":
        # Same compiled ops, executed over column vectors: the CSL
        # materializer inherits the batch path on columnar databases
        # (identical charges — see docs/engine.md).
        from .columnar_engine import materialize_kernel_columnar

        return materialize_kernel_columnar(kernel, database)
    return kernel.run(database)
