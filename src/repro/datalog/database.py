"""The database: a named collection of relations sharing one cost counter.

A :class:`Database` stores the extensional relations (EDB) and, during
evaluation, the derived relations (IDB).  All relations created through a
database share its :class:`CostCounter`, so a single counter captures the
total tuple-retrieval cost of answering a query, exactly the unit the
paper's complexity tables are expressed in.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ..errors import EvaluationError
from .atom import Atom
from .relation import CostCounter, Relation


class Database:
    """A mutable map from predicate names to :class:`Relation` objects."""

    def __init__(self, counter: Optional[CostCounter] = None):
        self.counter = counter if counter is not None else CostCounter()
        self._relations: Dict[str, Relation] = {}

    def create(self, name: str, arity: int) -> Relation:
        """Create (or return the existing) relation ``name`` of ``arity``."""
        existing = self._relations.get(name)
        if existing is not None:
            if existing.arity != arity:
                raise EvaluationError(
                    f"relation {name} exists with arity {existing.arity}, "
                    f"requested {arity}"
                )
            return existing
        relation = Relation(name, arity, counter=self.counter)
        self._relations[name] = relation
        return relation

    def add_fact(self, name: str, *values) -> bool:
        """Insert a fact, creating the relation on first use."""
        relation = self.create(name, len(values))
        return relation.add(values)

    def add_facts(self, name: str, tuples: Iterable[Tuple]) -> int:
        """Bulk insert; creates the relation from the first tuple's arity."""
        tuples = list(tuples)
        if not tuples:
            return 0
        relation = self.create(name, len(tuples[0]))
        return relation.add_all(tuples)

    def remove_fact(self, name: str, *values) -> bool:
        """Delete a fact; returns True when it was present.

        Unknown relations and absent tuples are no-ops (False), matching
        set-difference semantics; an arity mismatch against an existing
        relation is still an error.
        """
        relation = self._relations.get(name)
        if relation is None:
            return False
        if len(values) != relation.arity:
            raise EvaluationError(
                f"relation {name} has arity {relation.arity}, "
                f"got tuple {values!r}"
            )
        return relation.discard(values)

    def remove_facts(self, name: str, tuples: Iterable[Tuple]) -> int:
        """Bulk delete; returns how many tuples were present."""
        return sum(1 for tup in tuples if self.remove_fact(name, *tup))

    def add_atom(self, atom: Atom) -> bool:
        """Insert a ground atom as a fact."""
        if not atom.is_ground():
            raise EvaluationError(f"cannot store non-ground atom {atom}")
        return self.add_fact(atom.predicate, *(t.value for t in atom.terms))

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise EvaluationError(f"unknown relation {name!r}") from None

    def relation_or_empty(self, name: str, arity: int) -> Relation:
        """The named relation, or a fresh empty one (registered) if absent."""
        if name in self._relations:
            return self._relations[name]
        return self.create(name, arity)

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    def names(self):
        return sorted(self._relations)

    def facts(self, name: str) -> set:
        """The tuple set of a relation (empty set when absent); uncharged."""
        relation = self._relations.get(name)
        return relation.as_set() if relation is not None else set()

    def copy(self, counter: Optional[CostCounter] = None) -> "Database":
        """A deep copy; useful to evaluate the same EDB with many methods."""
        cloned = Database(counter if counter is not None else CostCounter())
        for name, relation in self._relations.items():
            cloned._relations[name] = relation.copy(cloned.counter)
        return cloned

    def total_cost(self) -> int:
        return self.counter.retrievals

    def reset_cost(self) -> None:
        self.counter.reset()

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __repr__(self):
        parts = ", ".join(
            f"{name}/{rel.arity}:{len(rel)}" for name, rel in sorted(self._relations.items())
        )
        return f"Database({parts})"
