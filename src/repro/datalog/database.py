"""The database: a named collection of relations sharing one cost counter.

A :class:`Database` stores the extensional relations (EDB) and, during
evaluation, the derived relations (IDB).  All relations created through a
database share its :class:`CostCounter`, so a single counter captures the
total tuple-retrieval cost of answering a query, exactly the unit the
paper's complexity tables are expressed in.

A database also fixes the physical storage backend of its relations:
``"set"`` (the classic tuple-set store) or ``"columnar"`` (interned
dense-int columns, see :mod:`repro.datalog.columnar`).  Columnar
relations share the database's :class:`SymbolTable`, and
:meth:`to_columnar` converts a set-backed database in place.  Retrieval
charges are identical on both backends — charging lives above the
storage boundary (see ``DESIGN.md``).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ..errors import EvaluationError
from .atom import Atom
from .relation import CostCounter, Relation

BACKENDS = ("set", "columnar")


class Database:
    """A mutable map from predicate names to :class:`Relation` objects."""

    def __init__(
        self,
        counter: Optional[CostCounter] = None,
        backend: str = "set",
    ):
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        self.counter = counter if counter is not None else CostCounter()
        self._relations: Dict[str, Relation] = {}
        self._backend = backend
        self._symbols = None
        self._vector: Optional[bool] = None

    @property
    def backend(self) -> str:
        """The storage backend new relations are created with."""
        return self._backend

    @property
    def symbols(self):
        """The per-database interner (created on first use)."""
        if self._symbols is None:
            from .columnar import SymbolTable

            self._symbols = SymbolTable()
        return self._symbols

    @property
    def columnar_vector(self) -> bool:
        """Whether columnar relations here vectorize through numpy."""
        if self._vector is None:
            from .columnar import numpy_enabled

            self._vector = numpy_enabled()
        return self._vector

    def _new_relation(self, name: str, arity: int) -> Relation:
        if self._backend == "columnar":
            from .columnar import ColumnarBackend

            return Relation(
                name,
                arity,
                counter=self.counter,
                backend=ColumnarBackend(
                    name, arity, self.symbols, vector=self.columnar_vector
                ),
            )
        return Relation(name, arity, counter=self.counter)

    def create(self, name: str, arity: int) -> Relation:
        """Create (or return the existing) relation ``name`` of ``arity``."""
        existing = self._relations.get(name)
        if existing is not None:
            if existing.arity != arity:
                raise EvaluationError(
                    f"relation {name} exists with arity {existing.arity}, "
                    f"requested {arity}"
                )
            return existing
        relation = self._new_relation(name, arity)
        self._relations[name] = relation
        return relation

    def to_columnar(self) -> "Database":
        """Convert every relation to the columnar backend, in place.

        Constants are interned through :attr:`symbols`; relation objects
        keep their identity, so external references (maintenance views,
        cached plans) stay valid.  Idempotent; returns ``self``.
        """
        if self._backend == "columnar":
            return self
        from .columnar import ColumnarBackend

        vector = self.columnar_vector
        for name, relation in self._relations.items():
            backend = ColumnarBackend(
                name, relation.arity, self.symbols, vector=vector
            )
            backend.load_tuples(list(relation))
            relation._set_backend(backend)
        self._backend = "columnar"
        return self

    def add_fact(self, name: str, *values) -> bool:
        """Insert a fact, creating the relation on first use."""
        relation = self.create(name, len(values))
        return relation.add(values)

    def add_facts(self, name: str, tuples: Iterable[Tuple]) -> int:
        """Bulk insert; creates the relation from the first tuple's arity."""
        tuples = list(tuples)
        if not tuples:
            return 0
        relation = self.create(name, len(tuples[0]))
        return relation.add_all(tuples)

    def remove_fact(self, name: str, *values) -> bool:
        """Delete a fact; returns True when it was present.

        Unknown relations and absent tuples are no-ops (False), matching
        set-difference semantics; an arity mismatch against an existing
        relation is still an error.
        """
        relation = self._relations.get(name)
        if relation is None:
            return False
        if len(values) != relation.arity:
            raise EvaluationError(
                f"relation {name} has arity {relation.arity}, "
                f"got tuple {values!r}"
            )
        return relation.discard(values)

    def remove_facts(self, name: str, tuples: Iterable[Tuple]) -> int:
        """Bulk delete; returns how many tuples were present."""
        return sum(1 for tup in tuples if self.remove_fact(name, *tup))

    def add_atom(self, atom: Atom) -> bool:
        """Insert a ground atom as a fact."""
        if not atom.is_ground():
            raise EvaluationError(f"cannot store non-ground atom {atom}")
        return self.add_fact(atom.predicate, *(t.value for t in atom.terms))

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise EvaluationError(f"unknown relation {name!r}") from None

    def relation_or_empty(self, name: str, arity: int) -> Relation:
        """The named relation, or a fresh empty one (registered) if absent."""
        if name in self._relations:
            return self._relations[name]
        return self.create(name, arity)

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    def names(self):
        return sorted(self._relations)

    def facts(self, name: str):
        """The tuple set of a relation (empty when absent); uncharged.

        Returns a frozen snapshot memoized per mutation stamp — callers
        compare, iterate, and test membership, so repeated calls on an
        unchanged relation no longer materialize fresh copies.
        """
        relation = self._relations.get(name)
        return relation.as_set() if relation is not None else frozenset()

    def copy(self, counter: Optional[CostCounter] = None) -> "Database":
        """A deep copy; useful to evaluate the same EDB with many methods.

        Preserves the storage backend.  A columnar copy shares this
        database's :class:`SymbolTable` — the interner is append-only,
        so sharing it is safe and keeps ids comparable across copies.
        """
        cloned = Database(
            counter if counter is not None else CostCounter(),
            backend=self._backend,
        )
        cloned._symbols = self._symbols
        cloned._vector = self._vector
        for name, relation in self._relations.items():
            cloned._relations[name] = relation.copy(cloned.counter)
        return cloned

    def memory_bytes(self) -> int:
        """Estimated resident bytes across relations (and the interner)."""
        total = sum(
            relation.memory_bytes() for relation in self._relations.values()
        )
        if self._symbols is not None:
            total += self._symbols.memory_bytes()
        return total

    def total_cost(self) -> int:
        return self.counter.retrievals

    def reset_cost(self) -> None:
        self.counter.reset()

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __repr__(self):
        parts = ", ".join(
            f"{name}/{rel.arity}:{len(rel)}" for name, rel in sorted(self._relations.items())
        )
        return f"Database({parts})"
