"""A tokenizer and recursive-descent parser for textual Datalog.

Surface syntax (Prolog-flavoured, as used by the paper's pseudo-code)::

    % same-generation
    sg(X, Y) :- flat(X, Y).
    sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y, Y1).
    ?- sg(ann, Y).

    parent(tom, bob).           % facts
    p(X) :- q(X), not r(X).     % stratified negation
    s(J1) :- s(J), J1 is J + 1, J1 < 10.   % builtins

Identifiers starting with a lowercase letter are constants / predicate
names; identifiers starting with an uppercase letter or underscore are
variables; integers and quoted strings are constants.  ``%`` starts a
line comment.
"""

from __future__ import annotations

from typing import List

from ..errors import DatalogSyntaxError
from .atom import Atom, BuiltinAtom, Literal
from .builtins import arithmetic, comparison
from .program import Program
from .rule import Rule
from .term import Constant, Variable

_PUNCT = {
    ":-": "IMPLIES",
    "?-": "QUERY",
    "(": "LPAREN",
    ")": "RPAREN",
    ",": "COMMA",
    ".": "DOT",
    "<=": "OP",
    ">=": "OP",
    "==": "OP",
    "!=": "OP",
    "<": "OP",
    ">": "OP",
    "+": "ARITH",
    "-": "ARITH",
    "*": "ARITH",
}
_PUNCT_ORDERED = sorted(_PUNCT, key=len, reverse=True)


class Token:
    __slots__ = ("kind", "text", "line", "column")

    def __init__(self, kind: str, text: str, line: int, column: int):
        self.kind = kind
        self.text = text
        self.line = line
        self.column = column

    def __repr__(self):
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> List[Token]:
    """Split Datalog source into tokens; raises on illegal characters."""
    tokens: List[Token] = []
    i = 0
    line = 1
    column = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            i += 1
            line += 1
            column = 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if ch == "%":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch in "'\"":
            quote = ch
            j = i + 1
            while j < n and source[j] != quote:
                if source[j] == "\n":
                    raise DatalogSyntaxError("unterminated string", line, column)
                j += 1
            if j >= n:
                raise DatalogSyntaxError("unterminated string", line, column)
            tokens.append(Token("STRING", source[i + 1 : j], line, column))
            column += j - i + 1
            i = j + 1
            continue
        if ch.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            tokens.append(Token("NUMBER", source[i:j], line, column))
            column += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            if text == "not":
                kind = "NOT"
            elif text == "is":
                kind = "IS"
            elif text[0].isupper() or text[0] == "_":
                kind = "VARIABLE"
            else:
                kind = "IDENT"
            tokens.append(Token(kind, text, line, column))
            column += j - i
            i = j
            continue
        matched = False
        for punct in _PUNCT_ORDERED:
            if source.startswith(punct, i):
                tokens.append(Token(_PUNCT[punct], punct, line, column))
                i += len(punct)
                column += len(punct)
                matched = True
                break
        if not matched:
            raise DatalogSyntaxError(f"illegal character {ch!r}", line, column)
    tokens.append(Token("EOF", "", line, column))
    return tokens


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.position = 0

    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != "EOF":
            self.position += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.peek()
        if token.kind != kind:
            raise DatalogSyntaxError(
                f"expected {kind}, found {token.text!r}", token.line, token.column
            )
        return self.advance()

    # --- grammar -------------------------------------------------------

    def parse_program(self) -> Program:
        program = Program()
        while self.peek().kind != "EOF":
            if self.peek().kind == "QUERY":
                self.advance()
                goal = self.parse_atom()
                self.expect("DOT")
                if program.query is not None:
                    token = self.peek()
                    raise DatalogSyntaxError(
                        "multiple query goals", token.line, token.column
                    )
                program.query = goal
            else:
                program.add_rule(self.parse_clause())
        return program

    def parse_clause(self) -> Rule:
        head = self.parse_atom()
        body: List = []
        if self.peek().kind == "IMPLIES":
            self.advance()
            body.append(self.parse_body_element())
            while self.peek().kind == "COMMA":
                self.advance()
                body.append(self.parse_body_element())
        self.expect("DOT")
        return Rule(head, body)

    def parse_body_element(self):
        token = self.peek()
        if token.kind == "NOT":
            self.advance()
            return Literal(self.parse_atom(), negated=True)
        if token.kind in ("VARIABLE", "NUMBER", "STRING"):
            return self.parse_builtin()
        if token.kind == "ARITH" and token.text == "-":
            return self.parse_builtin()
        if token.kind == "IDENT":
            # Could be an atom or a constant on the left of a comparison.
            after = self.peek(1)
            if after.kind in ("OP", "IS"):
                return self.parse_builtin()
            return Literal(self.parse_atom())
        raise DatalogSyntaxError(
            f"unexpected token {token.text!r} in rule body", token.line, token.column
        )

    def parse_builtin(self) -> BuiltinAtom:
        left = self.parse_term()
        token = self.peek()
        if token.kind == "OP":
            self.advance()
            right = self.parse_term()
            return comparison(token.text, left, right)
        if token.kind == "IS":
            self.advance()
            operand_left = self.parse_term()
            op_token = self.peek()
            if op_token.kind != "ARITH":
                raise DatalogSyntaxError(
                    f"expected arithmetic operator after 'is', found {op_token.text!r}",
                    op_token.line,
                    op_token.column,
                )
            self.advance()
            operand_right = self.parse_term()
            return arithmetic(left, operand_left, op_token.text, operand_right)
        raise DatalogSyntaxError(
            f"expected comparison or 'is', found {token.text!r}",
            token.line,
            token.column,
        )

    def parse_atom(self) -> Atom:
        name = self.expect("IDENT")
        terms: List = []
        if self.peek().kind == "LPAREN":
            self.advance()
            terms.append(self.parse_term())
            while self.peek().kind == "COMMA":
                self.advance()
                terms.append(self.parse_term())
            self.expect("RPAREN")
        return Atom(name.text, terms)

    def parse_term(self):
        token = self.peek()
        if token.kind == "VARIABLE":
            self.advance()
            return Variable(token.text)
        if token.kind == "IDENT":
            self.advance()
            return Constant(token.text)
        if token.kind == "NUMBER":
            self.advance()
            return Constant(int(token.text))
        if token.kind == "STRING":
            self.advance()
            return Constant(token.text)
        if token.kind == "ARITH" and token.text == "-":
            self.advance()
            number = self.expect("NUMBER")
            return Constant(-int(number.text))
        raise DatalogSyntaxError(
            f"expected a term, found {token.text!r}", token.line, token.column
        )


def parse_program(source: str) -> Program:
    """Parse Datalog source text into a :class:`Program`."""
    return _Parser(tokenize(source)).parse_program()


def parse_rule(source: str) -> Rule:
    """Parse a single rule (or fact)."""
    parser = _Parser(tokenize(source))
    clause = parser.parse_clause()
    parser.expect("EOF")
    return clause


def parse_atom(source: str) -> Atom:
    """Parse a single atom, e.g. ``"sg(ann, Y)"``."""
    parser = _Parser(tokenize(source))
    parsed = parser.parse_atom()
    parser.expect("EOF")
    return parsed
