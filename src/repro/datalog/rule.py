"""Rules (Horn clauses) and their safety validation.

A :class:`Rule` is ``head :- body`` where the head is an :class:`Atom`
and the body is a sequence of :class:`Literal` and :class:`BuiltinAtom`
elements.  A rule with an empty body and a ground head is a fact.

Safety (range restriction) follows the standard Datalog definition,
extended for builtins:

* every head variable must be *limited*;
* every variable of a negated literal must be limited;
* a variable is limited when it occurs in a positive body literal, or is
  the output of an ``is`` builtin whose operands are limited;
* comparison builtins limit nothing, and all their variables must be
  limited elsewhere.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple, Union

from ..errors import SafetyError
from .atom import Atom, BuiltinAtom, Literal
from .builtins import output_variables, required_bound_variables

BodyElement = Union[Literal, BuiltinAtom]


def _coerce_body_element(element) -> BodyElement:
    if isinstance(element, (Literal, BuiltinAtom)):
        return element
    if isinstance(element, Atom):
        return Literal(element)
    raise TypeError(f"cannot use {element!r} as a rule body element")


class Rule:
    """A Horn rule ``head :- body``."""

    __slots__ = ("head", "body")

    def __init__(self, head: Atom, body: Iterable = ()):
        if not isinstance(head, Atom):
            raise TypeError("rule head must be an Atom")
        self.head = head
        self.body: Tuple[BodyElement, ...] = tuple(
            _coerce_body_element(e) for e in body
        )

    @property
    def is_fact(self) -> bool:
        return not self.body and self.head.is_ground()

    def positive_literals(self) -> List[Literal]:
        return [e for e in self.body if isinstance(e, Literal) and not e.negated]

    def negative_literals(self) -> List[Literal]:
        return [e for e in self.body if isinstance(e, Literal) and e.negated]

    def builtins(self) -> List[BuiltinAtom]:
        return [e for e in self.body if isinstance(e, BuiltinAtom)]

    def body_predicates(self):
        """Predicate names occurring in relational body literals."""
        return [e.predicate for e in self.body if isinstance(e, Literal)]

    def variables(self):
        """All distinct variables in the rule, head first."""
        seen = set()
        for source in (self.head, *self.body):
            for v in source.variables():
                if v not in seen:
                    seen.add(v)
                    yield v

    def substitute(self, theta) -> "Rule":
        return Rule(
            self.head.substitute(theta),
            tuple(e.substitute(theta) for e in self.body),
        )

    def rename_apart(self, suffix: str) -> "Rule":
        """Rename every variable by appending ``suffix`` (for rewrites)."""
        from .term import Variable

        theta = {v: Variable(v.name + suffix) for v in self.variables()}
        return self.substitute(theta)

    def check_safety(self) -> None:
        """Raise :class:`SafetyError` unless the rule is range-restricted."""
        limited = set()
        for literal in self.positive_literals():
            limited.update(literal.variables())
        # 'is' builtins can chain: iterate to a fixpoint.
        changed = True
        while changed:
            changed = False
            for builtin in self.builtins():
                needs = required_bound_variables(builtin)
                gives = output_variables(builtin)
                if needs <= limited and not gives <= limited:
                    limited.update(gives)
                    changed = True
        unsafe_head = [v for v in self.head.variables() if v not in limited]
        if unsafe_head:
            names = ", ".join(v.name for v in unsafe_head)
            raise SafetyError(f"head variables not range-restricted: {names} in {self}")
        for literal in self.negative_literals():
            unsafe = [v for v in literal.variables() if v not in limited]
            if unsafe:
                names = ", ".join(v.name for v in unsafe)
                raise SafetyError(
                    f"variables of negated literal not range-restricted: "
                    f"{names} in {self}"
                )
        for builtin in self.builtins():
            unsafe = [
                v for v in required_bound_variables(builtin) if v not in limited
            ]
            if unsafe:
                names = ", ".join(v.name for v in unsafe)
                raise SafetyError(
                    f"builtin arguments not range-restricted: {names} in {self}"
                )

    def __eq__(self, other):
        return (
            isinstance(other, Rule)
            and self.head == other.head
            and self.body == other.body
        )

    def __hash__(self):
        return hash((self.head, self.body))

    def __repr__(self):
        return f"Rule({self.head!r}, {self.body!r})"

    def __str__(self):
        if not self.body:
            return f"{self.head}."
        body = ", ".join(str(e) for e in self.body)
        return f"{self.head} :- {body}."


def rule(head: Atom, *body) -> Rule:
    """Shorthand rule constructor: ``rule(head, lit1, lit2, ...)``."""
    return Rule(head, body)
