"""Structural analysis of canonical strongly linear (CSL) recursion.

The paper's methods apply to queries of the canonical form

    P(X, Y) :- E(X, Y).                       % exit rule(s)
    P(X, Y) :- L(X, X1), P(X1, Y1), R(Y, Y1). % one linear recursive rule
    ?- P(a, Y).

and, as Section 1 notes, to the wider class where ``X`` and ``Y`` stand
for several arguments and ``L``/``R``/``E`` are conjunctions, possibly of
*derived* predicates ([SZ1]'s canonical strongly linear queries).

:func:`analyze_linear` verifies that a program + goal has this shape and
decomposes the recursive rule into its **left** part (the literals that
propagate the binding from the bound head arguments to the recursive
call — the paper's ``L``), its **right** part (the literals that carry
answers back — ``R``), and the exit rules (``E``).  The counting
rewriting (:mod:`repro.datalog.counting_rewrite`) and the query-graph
construction (:mod:`repro.core.csl`) both build on this decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set, Tuple

from ..errors import NotCSLError
from .adornment import adornment_from_goal, bound_positions, free_positions
from .atom import Atom, Literal
from .program import Program
from .rule import Rule
from .term import Variable


@dataclass
class LinearRecursion:
    """The decomposition of a CSL query.

    Attributes
    ----------
    predicate:
        The recursive predicate ``P``.
    goal:
        The query goal (some arguments constant).
    adornment:
        The goal's adornment string, e.g. ``"bf"``.
    bound, free:
        Bound / free argument positions of the goal.
    exit_rules:
        All non-recursive rules for ``P`` (the paper's ``E``).
    recursive_rule:
        The single linear recursive rule.
    recursive_index:
        Position of the recursive literal within that rule's body.
    left_elements, right_elements:
        The body elements of the recursive rule on each side of the
        recursion (the paper's ``L`` and ``R`` conjunctions).
    head_bound_terms, head_free_terms:
        Head argument terms at bound / free positions.
    rec_bound_terms, rec_free_terms:
        Recursive-literal argument terms at bound / free positions.
    """

    predicate: str
    goal: Atom
    adornment: str
    bound: List[int]
    free: List[int]
    exit_rules: List[Rule]
    recursive_rule: Rule
    recursive_index: int
    left_elements: List = field(default_factory=list)
    right_elements: List = field(default_factory=list)
    head_bound_terms: Tuple = ()
    head_free_terms: Tuple = ()
    rec_bound_terms: Tuple = ()
    rec_free_terms: Tuple = ()

    @property
    def recursive_literal(self) -> Literal:
        return self.recursive_rule.body[self.recursive_index]


def _count_occurrences(rule: Rule, predicate: str) -> int:
    return sum(
        1
        for e in rule.body
        if isinstance(e, Literal) and e.predicate == predicate
    )


def _check_no_mutual_recursion(program: Program, predicate: str) -> None:
    graph = program.dependency_graph()
    for other in program.idb_predicates():
        if other == predicate:
            continue
        depends_on_p = Program._reaches(graph, other, predicate)
        p_depends_on = Program._reaches(graph, predicate, other)
        if depends_on_p and p_depends_on:
            raise NotCSLError(
                f"predicates {predicate!r} and {other!r} are mutually "
                "recursive; the query is not canonical strongly linear"
            )


def _variables(terms) -> Set[Variable]:
    return {t for t in terms if isinstance(t, Variable)}


def _connected_components(elements: List) -> List[Tuple[Set[int], Set[Variable]]]:
    """Group body elements by shared variables (union-find by flooding)."""
    remaining = set(range(len(elements)))
    components: List[Tuple[Set[int], Set[Variable]]] = []
    while remaining:
        seed = remaining.pop()
        members = {seed}
        variables = set(elements[seed].variables())
        changed = True
        while changed:
            changed = False
            for index in list(remaining):
                element_vars = set(elements[index].variables())
                if element_vars & variables:
                    members.add(index)
                    variables |= element_vars
                    remaining.discard(index)
                    changed = True
        components.append((members, variables))
    return components


def analyze_linear(program: Program, goal: Atom = None) -> LinearRecursion:
    """Verify CSL shape and decompose the recursive rule.

    Raises :class:`NotCSLError` (with a specific message) when the
    program is outside the class.
    """
    if goal is None:
        goal = program.query
    if goal is None:
        raise NotCSLError("program has no query goal")
    predicate = goal.predicate
    if predicate not in program.idb_predicates():
        raise NotCSLError(f"goal predicate {predicate!r} is not intensional")

    adornment = adornment_from_goal(goal)
    bound = bound_positions(adornment)
    free = free_positions(adornment)
    if not bound:
        raise NotCSLError("goal has no bound argument; nothing to propagate")

    _check_no_mutual_recursion(program, predicate)

    exit_rules: List[Rule] = []
    recursive_rules: List[Rule] = []
    for rule in program.rules_for(predicate):
        occurrences = _count_occurrences(rule, predicate)
        if occurrences == 0:
            exit_rules.append(rule)
        elif occurrences == 1:
            recursive_rules.append(rule)
        else:
            raise NotCSLError(f"rule {rule} is not linear in {predicate!r}")
    if not exit_rules:
        raise NotCSLError(f"no exit rule for {predicate!r}")
    if len(recursive_rules) != 1:
        raise NotCSLError(
            f"expected exactly one recursive rule for {predicate!r}, "
            f"found {len(recursive_rules)}"
        )
    recursive_rule = recursive_rules[0]

    recursive_index = next(
        i
        for i, e in enumerate(recursive_rule.body)
        if isinstance(e, Literal) and e.predicate == predicate
    )
    recursive_literal = recursive_rule.body[recursive_index]
    if recursive_literal.negated:
        raise NotCSLError("recursive literal is negated")

    head = recursive_rule.head
    head_bound_terms = tuple(head.terms[i] for i in bound)
    head_free_terms = tuple(head.terms[i] for i in free)
    rec_bound_terms = tuple(recursive_literal.terms[i] for i in bound)
    rec_free_terms = tuple(recursive_literal.terms[i] for i in free)

    head_bound_vars = _variables(head_bound_terms)
    head_free_vars = _variables(head_free_terms)
    rec_bound_vars = _variables(rec_bound_terms)
    rec_free_vars = _variables(rec_free_terms)

    if head_bound_vars & head_free_vars:
        raise NotCSLError(
            "recursive-rule head shares variables between bound and free "
            "positions; the binding does not separate"
        )
    if (head_bound_vars | rec_bound_vars) & (head_free_vars | rec_free_vars):
        raise NotCSLError(
            "bound-side and free-side variables overlap in the recursive rule"
        )

    other_elements = [
        e for i, e in enumerate(recursive_rule.body) if i != recursive_index
    ]
    left_side_vars = head_bound_vars | rec_bound_vars
    right_side_vars = head_free_vars | rec_free_vars

    left_elements: List = []
    right_elements: List = []
    for members, variables in _connected_components(other_elements):
        touches_left = bool(variables & left_side_vars)
        touches_right = bool(variables & right_side_vars)
        if touches_left and touches_right:
            raise NotCSLError(
                "a body conjunct connects the bound side to the free side; "
                "the rule is not canonical strongly linear"
            )
        target = left_elements if touches_left else right_elements
        if not touches_left and not touches_right:
            # A disconnected conjunct acts as a global filter; attach it
            # to the left so it gates the binding propagation.
            target = left_elements
        for index in sorted(members):
            target.append(other_elements[index])

    # Safety of the decomposition: the recursive call's bound arguments
    # must be computable from the head binding through the left part, and
    # the head's free arguments from the recursive call's free results
    # through the right part.
    left_available = set(head_bound_vars)
    for element in left_elements:
        if isinstance(element, Literal) and not element.negated:
            left_available |= set(element.variables())
    if not rec_bound_vars <= left_available:
        raise NotCSLError(
            "recursive call's bound arguments are not determined by the "
            "left conjunction"
        )
    right_available = set(rec_free_vars)
    for element in right_elements:
        if isinstance(element, Literal) and not element.negated:
            right_available |= set(element.variables())
    if not head_free_vars <= right_available:
        raise NotCSLError(
            "head's free arguments are not determined by the right conjunction"
        )

    return LinearRecursion(
        predicate=predicate,
        goal=goal,
        adornment=adornment,
        bound=bound,
        free=free,
        exit_rules=exit_rules,
        recursive_rule=recursive_rule,
        recursive_index=recursive_index,
        left_elements=left_elements,
        right_elements=right_elements,
        head_bound_terms=head_bound_terms,
        head_free_terms=head_free_terms,
        rec_bound_terms=rec_bound_terms,
        rec_free_terms=rec_free_terms,
    )
