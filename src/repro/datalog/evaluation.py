"""Bottom-up evaluation: naive and semi-naive fixpoints.

The evaluator computes the minimal model of a (stratified) Datalog
program over a :class:`Database`, writing derived facts back into the
database.  Two strategies are provided:

* :func:`naive_evaluate` — recompute every rule against the full
  database until nothing changes.  Slow, but its utter simplicity makes
  it the trusted reference oracle for all the optimized methods.
* :func:`seminaive_evaluate` — the differential fixpoint of [Ban, BaR]:
  within each recursive stratum, only rule instantiations that use at
  least one *new* fact (the delta) are re-derived.

:func:`seminaive_evaluate` runs on one of two engines.  The default,
``engine="compiled"``, lowers each rule once into a slot-based join
kernel (:mod:`repro.datalog.engine`) and executes flat closure chains;
``engine="interpreted"`` is the original tuple-at-a-time interpreter in
this module, retained as the differential oracle next to
:func:`naive_evaluate`.  In the compiled engine's default ``"mirror"``
plan the two produce identical answers *and* identical
:class:`~repro.datalog.relation.CostCounter` snapshots — the kernels
replay the interpreter's join order and read state through the same
charged :meth:`Relation.lookup`/:meth:`Relation.contains` primitives.

Both accept ``max_iterations``: recursive programs over cyclic data can
genuinely diverge when values grow without bound (this is exactly how
the counting method loses safety — Section 2 of the paper), and the
budget turns divergence into an :class:`UnsafeQueryError` rather than a
hang.

Body evaluation handles positive literals, stratified negation, and the
arithmetic/comparison builtins.  Body elements are dynamically reordered
so that tests run as soon as their variables are bound (never before).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..errors import EvaluationError, UnsafeQueryError
from .atom import BuiltinAtom, Literal
from .builtins import evaluate_builtin, required_bound_variables
from .database import Database
from .program import Program
from .relation import Relation
from .rule import Rule
from .stratify import stratify
from .unify import ground_atom_tuple, lookup_pattern, match_tuple

DEFAULT_MAX_ITERATIONS = 100_000

# Engine selection for seminaive_evaluate.  "compiled" lowers rules to
# join kernels once per program (repro.datalog.engine); "columnar" runs
# the same kernels as batch joins over interned column vectors
# (repro.datalog.columnar_engine); "interpreted" is the
# recursive-generator evaluator below, kept as the differential oracle.
DEFAULT_ENGINE = "compiled"
SEMINAIVE_ENGINES = ("compiled", "interpreted", "columnar")


class _FactSource:
    """Resolves body literals to relations during one rule evaluation.

    ``overrides`` maps predicate names to replacement relations (used by
    semi-naive evaluation to point one recursive literal at the delta).
    """

    __slots__ = ("database", "overrides", "arities")

    def __init__(self, database: Database, arities: Dict[str, int], overrides=None):
        self.database = database
        self.arities = arities
        self.overrides = overrides or {}

    def relation_for(self, predicate: str, arity: int):
        override = self.overrides.get(predicate)
        if override is not None:
            return override
        return self.database.relation_or_empty(predicate, arity)


def _ready_element_index(elements: List, bound: Set) -> int:
    """Pick the next body element to evaluate.

    Preference order: any builtin or negated literal whose variables are
    already bound (cheap filters first), otherwise the first positive
    literal.  Returns -1 when nothing is evaluable (unsafe rule).
    """
    first_positive = -1
    for i, element in enumerate(elements):
        if isinstance(element, BuiltinAtom):
            if required_bound_variables(element) <= bound:
                return i
        elif element.negated:
            if set(element.variables()) <= bound:
                return i
        elif first_positive < 0:
            first_positive = i
    return first_positive


def _evaluate_body(
    elements: List, theta: Dict, source: _FactSource
) -> Iterator[Dict]:
    """Yield all substitutions satisfying the remaining body elements."""
    if not elements:
        yield theta
        return
    bound = set(theta)
    index = _ready_element_index(elements, bound)
    if index < 0:
        raise EvaluationError(
            "no evaluable body element; rule is unsafe: "
            + ", ".join(str(e) for e in elements)
        )
    element = elements[index]
    rest = elements[:index] + elements[index + 1 :]

    if isinstance(element, BuiltinAtom):
        for extended in evaluate_builtin(element, theta):
            yield from _evaluate_body(rest, extended, source)
        return

    relation = source.relation_for(element.predicate, len(element.terms))
    if element.negated:
        pattern = lookup_pattern(element.terms, theta)
        if any(value is None for value in pattern):
            raise EvaluationError(f"negated literal {element} not ground")
        if not relation.contains(pattern):
            yield from _evaluate_body(rest, theta, source)
        return

    pattern = lookup_pattern(element.terms, theta)
    for tup in relation.lookup(pattern):
        extended = match_tuple(element.terms, tup, theta)
        if extended is not None:
            yield from _evaluate_body(rest, extended, source)


def evaluate_rule(rule: Rule, source: _FactSource) -> Iterator[Tuple]:
    """Yield the head tuples derivable by one rule from ``source``."""
    for theta in _evaluate_body(list(rule.body), {}, source):
        yield ground_atom_tuple(rule.head, theta)


def _arity_map(program: Program) -> Dict[str, int]:
    arities: Dict[str, int] = {}
    for rule in program.rules:
        arities.setdefault(rule.head.predicate, rule.head.arity)
        for element in rule.body:
            if isinstance(element, Literal):
                arities.setdefault(element.predicate, len(element.terms))
    if program.query is not None:
        arities.setdefault(program.query.predicate, program.query.arity)
    return arities


def naive_evaluate(
    program: Program,
    database: Database,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> Database:
    """Naive bottom-up fixpoint (the reference oracle).

    Strata are evaluated in order; within each stratum every rule is
    re-run against the whole database until no new fact appears.
    Derived facts are added to ``database`` in place; the database is
    also returned for chaining.
    """
    program.check_safety()
    arities = _arity_map(program)
    strata = stratify(program)
    source = _FactSource(database, arities)
    for stratum in strata:
        stratum_rules = [r for r in program.rules if r.head.predicate in stratum]
        for rule in stratum_rules:
            database.relation_or_empty(rule.head.predicate, rule.head.arity)
        iterations = 0
        changed = True
        while changed:
            iterations += 1
            if iterations > max_iterations:
                raise UnsafeQueryError(
                    f"naive fixpoint exceeded {max_iterations} iterations "
                    f"on stratum {sorted(stratum)}"
                )
            changed = False
            for rule in stratum_rules:
                head_relation = database.relation_or_empty(
                    rule.head.predicate, rule.head.arity
                )
                for tup in list(evaluate_rule(rule, source)):
                    if head_relation.add(tup):
                        changed = True
    return database


def seminaive_evaluate(
    program: Program,
    database: Database,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    engine: Optional[str] = None,
    plan: Optional[str] = None,
) -> Database:
    """Semi-naive (differential) bottom-up fixpoint.

    Within each stratum: rules whose bodies mention no predicate of the
    stratum run once; recursive rules are differentiated — for each
    occurrence of a stratum predicate, a delta version of the rule joins
    that occurrence against the facts new in the previous round.

    ``engine`` selects ``"compiled"`` (join kernels from
    :mod:`repro.datalog.engine`), ``"columnar"`` (the same kernels run
    as batch joins over the columnar interned backend — a set-backed
    database is converted in place), or ``"interpreted"`` (this
    module's tuple-at-a-time evaluator, the differential oracle).  When
    ``engine`` is omitted, a columnar-backed database routes to the
    columnar engine and anything else to the compiled default.  ``plan``
    is forwarded to the compiled/columnar engines: ``"mirror"``
    (default) replays the interpreter's join order for bit-for-bit cost
    parity, ``"cost"`` orders bodies once with the planner's statistics.
    """
    if engine is None:
        engine = "columnar" if database.backend == "columnar" else DEFAULT_ENGINE
    if engine == "compiled":
        from .engine import compiled_seminaive_evaluate

        return compiled_seminaive_evaluate(
            program, database, max_iterations, plan=plan or "mirror"
        )
    if engine == "columnar":
        from .columnar_engine import columnar_seminaive_evaluate

        return columnar_seminaive_evaluate(
            program, database, max_iterations, plan=plan or "mirror"
        )
    if engine != "interpreted":
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {SEMINAIVE_ENGINES}"
        )
    if plan is not None:
        raise ValueError("plan selection requires engine='compiled'")
    program.check_safety()
    arities = _arity_map(program)
    strata = stratify(program)

    for stratum in strata:
        stratum_rules = [r for r in program.rules if r.head.predicate in stratum]
        for rule in stratum_rules:
            database.relation_or_empty(rule.head.predicate, rule.head.arity)

        base_source = _FactSource(database, arities)
        deltas: Dict[str, Set[Tuple]] = {p: set() for p in stratum}

        # Round 0: run every rule once against the current database (the
        # recursive predicates may already hold facts seeded by callers).
        for rule in stratum_rules:
            head_relation = database.relation_or_empty(
                rule.head.predicate, rule.head.arity
            )
            for tup in list(evaluate_rule(rule, base_source)):
                if head_relation.add(tup):
                    deltas[rule.head.predicate].add(tup)

        recursive_rules = [
            r
            for r in stratum_rules
            if any(
                isinstance(e, Literal) and not e.negated and e.predicate in stratum
                for e in r.body
            )
        ]

        iterations = 0
        while any(deltas.values()):
            iterations += 1
            if iterations > max_iterations:
                raise UnsafeQueryError(
                    f"seminaive fixpoint exceeded {max_iterations} iterations "
                    f"on stratum {sorted(stratum)}"
                )
            delta_relations = {}
            for predicate, tuples in deltas.items():
                if not tuples:
                    continue
                delta_relations[predicate] = Relation(
                    f"Δ{predicate}",
                    arities.get(predicate, len(next(iter(tuples)))),
                    tuples,
                    counter=database.counter,
                )
            next_deltas: Dict[str, Set[Tuple]] = {p: set() for p in stratum}
            for rule in recursive_rules:
                head_relation = database.relation_or_empty(
                    rule.head.predicate, rule.head.arity
                )
                recursive_positions = [
                    i
                    for i, e in enumerate(rule.body)
                    if isinstance(e, Literal)
                    and not e.negated
                    and e.predicate in stratum
                ]
                for position in recursive_positions:
                    element = rule.body[position]
                    delta = delta_relations.get(element.predicate)
                    if delta is None:
                        continue
                    # Evaluate with only this occurrence pinned to the
                    # delta.  Other occurrences see the full relation;
                    # set semantics absorbs duplicated derivations.
                    body = list(rule.body)
                    body[0], body[position] = body[position], body[0]
                    pinned = _PinnedFirstSource(
                        _FactSource(database, arities), element.predicate, delta
                    )
                    for theta in _evaluate_body(body, {}, pinned):
                        tup = ground_atom_tuple(rule.head, theta)
                        if tup not in head_relation and tup not in next_deltas[
                            rule.head.predicate
                        ]:
                            next_deltas[rule.head.predicate].add(tup)
            for predicate, tuples in next_deltas.items():
                if not tuples:
                    continue
                relation = database.relation_or_empty(
                    predicate, arities.get(predicate, len(next(iter(tuples))))
                )
                confirmed = set()
                for tup in tuples:
                    if relation.add(tup):
                        confirmed.add(tup)
                next_deltas[predicate] = confirmed
            deltas = next_deltas
    return database


class _PinnedFirstSource:
    """A fact source that serves the delta for the first occurrence of a
    predicate and the full relation for later ones.

    The delta-differentiated body is reordered so the pinned occurrence
    is element 0; subsequent occurrences of the same predicate must see
    the full relation, so a plain override (which replaces *every*
    occurrence) would under-derive.  This wrapper hands out the delta
    exactly once.
    """

    __slots__ = ("inner", "predicate", "delta", "served")

    def __init__(self, inner: _FactSource, predicate: str, delta):
        self.inner = inner
        self.predicate = predicate
        self.delta = delta
        self.served = False

    def relation_for(self, predicate: str, arity: int):
        if predicate == self.predicate and not self.served:
            self.served = True
            return self.delta
        return self.inner.database.relation_or_empty(predicate, arity)


def answer_tuples(
    program: Program,
    database: Database,
    engine: str = "seminaive",
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> Set[Tuple]:
    """Evaluate ``program`` and return the tuples matching its query goal.

    ``engine`` is ``"naive"``, ``"seminaive"`` (the default compiled
    semi-naive engine), or explicitly ``"compiled"`` / ``"interpreted"``
    to pick a semi-naive engine.  The goal may contain constants
    (selections) and variables (projected out positions keep their
    order).
    """
    if program.query is None:
        raise EvaluationError("program has no query goal")
    if engine == "naive":
        naive_evaluate(program, database, max_iterations)
    elif engine == "seminaive":
        seminaive_evaluate(program, database, max_iterations)
    elif engine in SEMINAIVE_ENGINES:
        seminaive_evaluate(program, database, max_iterations, engine=engine)
    else:
        raise ValueError(f"unknown engine {engine!r}")
    goal = program.query
    relation = database.relation_or_empty(goal.predicate, goal.arity)
    results: Set[Tuple] = set()
    pattern = tuple(t.value if t.is_constant else None for t in goal.terms)
    variable_positions = [i for i, t in enumerate(goal.terms) if t.is_variable]
    for tup in relation.lookup(pattern):
        theta = match_tuple(goal.terms, tup, {})
        if theta is None:
            continue
        results.add(tuple(tup[i] for i in variable_positions))
    return results
