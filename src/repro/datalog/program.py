"""Datalog programs: a set of rules plus an optional query goal.

A :class:`Program` distinguishes *extensional* predicates (EDB — defined
only by stored facts) from *intensional* predicates (IDB — defined by at
least one rule head).  It exposes the predicate dependency graph used by
stratification, recursion analysis, and the rewriting passes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from .atom import Atom, Literal
from .rule import Rule


class Program:
    """An ordered collection of rules with an optional query goal."""

    def __init__(self, rules: Iterable[Rule] = (), query: Optional[Atom] = None):
        self.rules: List[Rule] = list(rules)
        self.query = query

    def add_rule(self, rule: Rule) -> None:
        self.rules.append(rule)

    def idb_predicates(self) -> Set[str]:
        """Predicates defined by at least one rule head."""
        return {r.head.predicate for r in self.rules}

    def edb_predicates(self) -> Set[str]:
        """Predicates referenced in bodies but never defined by a rule."""
        idb = self.idb_predicates()
        referenced: Set[str] = set()
        for r in self.rules:
            referenced.update(r.body_predicates())
        if self.query is not None:
            referenced.add(self.query.predicate)
        return referenced - idb

    def predicates(self) -> Set[str]:
        return self.idb_predicates() | self.edb_predicates()

    def rules_for(self, predicate: str) -> List[Rule]:
        return [r for r in self.rules if r.head.predicate == predicate]

    def dependency_edges(self) -> List[Tuple[str, str, bool]]:
        """Edges ``(head_pred, body_pred, negated)`` of the dependency graph."""
        edges = []
        for r in self.rules:
            for element in r.body:
                if isinstance(element, Literal):
                    edges.append((r.head.predicate, element.predicate, element.negated))
        return edges

    def dependency_graph(self) -> Dict[str, Set[str]]:
        """Adjacency map: head predicate -> set of body predicates."""
        graph: Dict[str, Set[str]] = {p: set() for p in self.predicates()}
        for head, body, _negated in self.dependency_edges():
            graph.setdefault(head, set()).add(body)
        return graph

    def recursive_predicates(self) -> Set[str]:
        """IDB predicates that (transitively) depend on themselves."""
        graph = self.dependency_graph()
        recursive = set()
        for pred in self.idb_predicates():
            if self._reaches(graph, pred, pred):
                recursive.add(pred)
        return recursive

    @staticmethod
    def _reaches(graph: Dict[str, Set[str]], start: str, target: str) -> bool:
        """True when ``target`` is reachable from ``start`` in >= 1 step."""
        stack = list(graph.get(start, ()))
        seen = set()
        while stack:
            node = stack.pop()
            if node == target:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(graph.get(node, ()))
        return False

    def is_linear(self, predicate: str) -> bool:
        """True when each rule for ``predicate`` has at most one literal
        that is mutually recursive with it."""
        graph = self.dependency_graph()
        mutually_recursive = {predicate} | {
            p
            for p in self.idb_predicates()
            if self._reaches(graph, predicate, p) and self._reaches(graph, p, predicate)
        }
        for r in self.rules_for(predicate):
            count = sum(
                1
                for element in r.body
                if isinstance(element, Literal)
                and element.predicate in mutually_recursive
            )
            if count > 1:
                return False
        return True

    def check_safety(self) -> None:
        """Validate every rule; raises :class:`SafetyError` on the first
        violation."""
        for r in self.rules:
            r.check_safety()

    def __eq__(self, other):
        return (
            isinstance(other, Program)
            and self.rules == other.rules
            and self.query == other.query
        )

    def __repr__(self):
        return f"Program({len(self.rules)} rules, query={self.query})"

    def __str__(self):
        lines = [str(r) for r in self.rules]
        if self.query is not None:
            lines.append(f"?- {self.query}.")
        return "\n".join(lines)
