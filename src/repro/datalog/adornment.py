"""Adornments and sideways information passing (SIPS).

An *adornment* records, per argument position of a predicate occurrence,
whether the position is bound (``b``) or free (``f``) at call time — e.g.
the paper's query ``P(a, Y)?`` gives ``P`` the adornment ``bf``.  The
magic set rewriting operates on the adorned program: each adorned version
of an IDB predicate becomes its own predicate.

We use the standard left-to-right SIPS: a body literal's argument is
bound when it is a constant, a bound head variable, or a variable that
occurs in an earlier positive body literal (or is the output of an
earlier evaluable ``is`` builtin).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..errors import ReproError
from .atom import Atom, BuiltinAtom, Literal
from .builtins import output_variables, required_bound_variables
from .program import Program
from .rule import Rule
from .term import Variable

Adornment = str  # e.g. "bf"


def adornment_from_goal(goal: Atom) -> Adornment:
    """Adornment induced by a query goal: constants bound, variables free."""
    return "".join("b" if t.is_constant else "f" for t in goal.terms)


def adorned_name(predicate: str, adornment: Adornment) -> str:
    """Name of the adorned copy of a predicate, e.g. ``p__bf``."""
    return f"{predicate}__{adornment}" if adornment else predicate


def bound_positions(adornment: Adornment) -> List[int]:
    return [i for i, c in enumerate(adornment) if c == "b"]


def free_positions(adornment: Adornment) -> List[int]:
    return [i for i, c in enumerate(adornment) if c == "f"]


class AdornedRule:
    """One rule of the adorned program.

    ``head_adornment`` adorns the head; ``literal_adornments`` maps body
    positions of IDB literals to their adornments (EDB literals and
    builtins are not adorned).
    """

    __slots__ = ("rule", "head_adornment", "literal_adornments")

    def __init__(
        self,
        rule: Rule,
        head_adornment: Adornment,
        literal_adornments: Dict[int, Adornment],
    ):
        self.rule = rule
        self.head_adornment = head_adornment
        self.literal_adornments = literal_adornments

    def __repr__(self):
        return (
            f"AdornedRule({self.rule.head.predicate}^{self.head_adornment}, "
            f"{self.literal_adornments})"
        )


class AdornedProgram:
    """The result of adorning a program w.r.t. a query goal."""

    def __init__(
        self,
        program: Program,
        goal: Atom,
        goal_adornment: Adornment,
        adorned_rules: List[AdornedRule],
        idb: Set[str],
    ):
        self.program = program
        self.goal = goal
        self.goal_adornment = goal_adornment
        self.adorned_rules = adorned_rules
        self.idb = idb

    def call_patterns(self) -> List[Tuple[str, Adornment]]:
        """Every reachable IDB call pattern, sorted.

        The pairs ``(predicate, adornment)`` the worklist closure
        visited: the goal's own pattern, each adorned rule head, and
        each adorned body occurrence.  This is the binding-propagation
        summary the static analyzer reports per goal.
        """
        patterns: Set[Tuple[str, Adornment]] = set()
        if self.goal.predicate in self.idb:
            patterns.add((self.goal.predicate, self.goal_adornment))
        for adorned in self.adorned_rules:
            patterns.add(
                (adorned.rule.head.predicate, adorned.head_adornment)
            )
            for index, adornment in adorned.literal_adornments.items():
                patterns.add((adorned.rule.body[index].predicate, adornment))
        return sorted(patterns)


def _bound_variables_of_head(rule: Rule, adornment: Adornment) -> Set[Variable]:
    bound: Set[Variable] = set()
    for position in bound_positions(adornment):
        term = rule.head.terms[position]
        if term.is_variable:
            bound.add(term)
    return bound


def _literal_adornment(literal: Literal, bound: Set[Variable]) -> Adornment:
    marks = []
    for term in literal.terms:
        if term.is_constant or term in bound:
            marks.append("b")
        else:
            marks.append("f")
    return "".join(marks)


def adorn_rule(rule: Rule, adornment: Adornment, idb: Set[str]) -> AdornedRule:
    """Adorn one rule for a call pattern, left-to-right SIPS."""
    if len(adornment) != rule.head.arity:
        raise ReproError(
            f"adornment {adornment} does not match arity of {rule.head}"
        )
    bound = _bound_variables_of_head(rule, adornment)
    literal_adornments: Dict[int, Adornment] = {}
    for index, element in enumerate(rule.body):
        if isinstance(element, BuiltinAtom):
            if required_bound_variables(element) <= bound:
                bound |= output_variables(element)
            continue
        if element.negated:
            continue
        if element.predicate in idb:
            literal_adornments[index] = _literal_adornment(element, bound)
        bound |= set(element.variables())
    return AdornedRule(rule, adornment, literal_adornments)


def adorn_program(program: Program, goal: Atom = None) -> AdornedProgram:
    """Compute the set of adorned rules reachable from the query goal.

    Starts from the goal's adornment and closes under the call patterns
    generated by the rules themselves (a worklist over (predicate,
    adornment) pairs).
    """
    if goal is None:
        goal = program.query
    if goal is None:
        raise ReproError("no query goal to adorn against")
    idb = program.idb_predicates()
    goal_adornment = adornment_from_goal(goal)
    adorned_rules: List[AdornedRule] = []
    seen: Set[Tuple[str, Adornment]] = set()
    worklist: List[Tuple[str, Adornment]] = []

    if goal.predicate in idb:
        worklist.append((goal.predicate, goal_adornment))
        seen.add((goal.predicate, goal_adornment))

    while worklist:
        predicate, adornment = worklist.pop()
        for rule in program.rules_for(predicate):
            adorned = adorn_rule(rule, adornment, idb)
            adorned_rules.append(adorned)
            for index, literal_adornment in adorned.literal_adornments.items():
                element = rule.body[index]
                key = (element.predicate, literal_adornment)
                if key not in seen:
                    seen.add(key)
                    worklist.append(key)
    return AdornedProgram(program, goal, goal_adornment, adorned_rules, idb)
