"""A small join planner: body reordering by estimated cost.

The evaluators process rule bodies (mostly) left to right, so body
order is a plan.  :func:`optimize_program` reorders each rule body with
a greedy cheapest-next heuristic:

1. start from the variables bound by the head's constants — none for a
   plain bottom-up rule, but the magic/supplementary rewrites put the
   guard literal first and it stays first;
2. repeatedly pick the remaining element with the lowest estimated
   cost: builtins and negations as soon as they are evaluable (they
   only filter), then the positive literal with the smallest estimated
   *output* (relation size divided by the number of bound columns'
   distinct-value factor — a classic textbook selectivity estimate);
3. never move an element before the literals that bind the variables
   it needs (safety is preserved by construction).

Semantics are untouched — only the join order changes — which the fuzz
suite verifies; the cost win on skewed databases is demonstrated in the
planner tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .atom import BuiltinAtom, Literal
from .builtins import output_variables, required_bound_variables
from .database import Database
from .program import Program
from .rule import Rule
from .term import Variable


def _estimated_output(literal: Literal, bound: Set[Variable], sizes: Dict[str, int]) -> float:
    """Crude cardinality estimate for joining ``literal`` next."""
    size = sizes.get(literal.predicate, 100)
    bound_columns = sum(
        1
        for term in literal.terms
        if term.is_constant or term in bound
    )
    arity = max(1, len(literal.terms))
    # Each bound column divides the estimate; fully bound ~ membership.
    selectivity = (bound_columns / arity) * 0.9
    return max(1.0, size * (1.0 - selectivity))


def order_body_elements(
    elements,
    sizes: Dict[str, int],
    bound: Optional[Set[Variable]] = None,
) -> List:
    """Greedy cheapest-next ordering of one body's elements.

    ``bound`` seeds the set of already-bound variables — the compiled
    engine uses this to order the tail of a semi-naive delta rule after
    the pinned delta literal has bound its variables.
    """
    remaining = list(elements)
    ordered: List = []
    bound = set(bound) if bound else set()
    while remaining:
        # Filters first, as soon as they are evaluable.
        filter_index = None
        for i, element in enumerate(remaining):
            if isinstance(element, BuiltinAtom):
                if required_bound_variables(element) <= bound:
                    filter_index = i
                    break
            elif element.negated:
                if set(element.variables()) <= bound:
                    filter_index = i
                    break
        if filter_index is not None:
            element = remaining.pop(filter_index)
            ordered.append(element)
            if isinstance(element, BuiltinAtom):
                bound |= output_variables(element)
            continue
        # Cheapest positive literal next.
        candidates = [
            (i, element)
            for i, element in enumerate(remaining)
            if isinstance(element, Literal) and not element.negated
        ]
        if not candidates:
            # Only unevaluable filters left: emit in original order and
            # let the evaluator's own scheduling handle (or report) it.
            ordered.extend(remaining)
            break
        best_index, best = min(
            candidates,
            key=lambda pair: _estimated_output(pair[1], bound, sizes),
        )
        remaining.pop(best_index)
        ordered.append(best)
        bound |= set(best.variables())
    return ordered


def _order_body(rule: Rule, sizes: Dict[str, int]) -> List:
    return order_body_elements(rule.body, sizes)


def optimize_rule(rule: Rule, sizes: Dict[str, int]) -> Rule:
    """Reorder one rule's body; facts and single-literal bodies pass
    through untouched."""
    if len(rule.body) <= 1:
        return rule
    return Rule(rule.head, _order_body(rule, sizes))


def relation_sizes(database: Database) -> Dict[str, int]:
    """Current relation cardinalities (uncharged; planning metadata)."""
    return {name: len(database.relation(name)) for name in database.names()}


def optimize_program(
    program: Program, database: Optional[Database] = None
) -> Program:
    """Reorder every rule body using the database's relation sizes.

    Without a database, every relation is assumed equal-sized, which
    still moves selective (more-bound) literals forward.
    """
    sizes = relation_sizes(database) if database is not None else {}
    optimized = Program(
        [optimize_rule(rule, sizes) for rule in program.rules],
        program.query,
    )
    return optimized
