"""Incremental (insertion-only) view maintenance.

A deductive database rarely re-derives from scratch: when facts arrive,
the existing model should be *extended*.  For positive additions under
stratified negation-free dependencies this is exactly the semi-naive
delta step: seed the deltas with the new EDB facts, propagate.

:func:`insert_and_maintain` updates the IDB relations of an
already-evaluated database in place.  Restrictions (checked):

* the program must be negation-free in the strata the new facts can
  reach — insertions can *retract* facts derived through negation, and
  retraction needs DRed-style machinery we deliberately do not claim;
* the database must already be a fixpoint of the program (the usual
  invariant: call :func:`repro.datalog.evaluation.seminaive_evaluate`
  once, then maintain).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from ..errors import EvaluationError, UnsafeQueryError
from .atom import BuiltinAtom, Literal
from .database import Database
from .evaluation import (
    DEFAULT_MAX_ITERATIONS,
    _arity_map,
    _evaluate_body,
    _FactSource,
    _PinnedFirstSource,
)
from .program import Program
from .relation import Relation
from .unify import ground_atom_tuple


def _affected_predicates(program: Program, changed: Set[str]) -> Set[str]:
    """IDB predicates transitively depending on the changed ones."""
    dependents: Dict[str, Set[str]] = {}
    for head, body, _negated in program.dependency_edges():
        dependents.setdefault(body, set()).add(head)
    affected: Set[str] = set()
    stack = list(changed)
    while stack:
        predicate = stack.pop()
        for dependent in dependents.get(predicate, ()):
            if dependent not in affected:
                affected.add(dependent)
                stack.append(dependent)
    return affected


def _check_no_negation_in(program: Program, predicates: Set[str]) -> None:
    for rule in program.rules:
        if rule.head.predicate not in predicates:
            continue
        for element in rule.body:
            if isinstance(element, Literal) and element.negated:
                raise EvaluationError(
                    "insertion-only maintenance cannot handle negation in "
                    f"an affected rule: {rule}"
                )


def insert_and_maintain(
    program: Program,
    database: Database,
    new_facts: Dict[str, Iterable[Tuple]],
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> Dict[str, Set[Tuple]]:
    """Insert ``new_facts`` and propagate their consequences.

    ``new_facts`` maps predicate names to tuples.  Returns the per-
    predicate sets of *newly derived* IDB facts (not counting the
    insertions themselves).  The database is updated in place.

    The delta is validated before anything is stored: inserting into an
    IDB predicate is rejected (it would silently diverge from the
    rules-defined fixpoint), and every tuple must match the predicate's
    arity — from the program when it mentions the predicate, from the
    existing relation otherwise, and tuples within one batch must agree
    with each other.  On *any* failure, including one raised mid-
    propagation, every fact this call added is removed again, so the
    database is never left half-maintained.
    """
    program.check_safety()
    arities = _arity_map(program)
    idb = program.idb_predicates()

    cleaned: Dict[str, List[Tuple]] = {}
    for predicate, tuples in new_facts.items():
        tuples = [tuple(t) for t in tuples]
        if not tuples:
            continue
        if predicate in idb:
            raise EvaluationError(
                f"cannot insert into IDB predicate {predicate!r}; it is "
                "maintained from its rules"
            )
        arity = arities.get(predicate)
        if arity is None and database.has_relation(predicate):
            arity = database.relation(predicate).arity
        for tup in tuples:
            if arity is None:
                arity = len(tup)
            if len(tup) != arity:
                raise EvaluationError(
                    f"predicate {predicate!r} expects arity {arity}, "
                    f"got tuple {tup!r}"
                )
        cleaned[predicate] = tuples

    # Every add is journalled so a failure anywhere below restores the
    # pre-call state (the propagation can raise UnsafeQueryError on the
    # iteration budget, or EvaluationError from an unsafe rule body).
    journal: List[Tuple[str, Tuple]] = []
    try:
        deltas: Dict[str, Set[Tuple]] = {}
        for predicate, tuples in cleaned.items():
            relation = database.relation_or_empty(predicate, len(tuples[0]))
            fresh = set()
            for tup in tuples:
                if relation.add(tup):
                    fresh.add(tup)
                    journal.append((predicate, tup))
            if fresh:
                deltas[predicate] = fresh

        affected = _affected_predicates(program, set(deltas))
        _check_no_negation_in(program, affected)

        derived: Dict[str, Set[Tuple]] = {p: set() for p in affected}
        rules = [r for r in program.rules if r.head.predicate in affected]
        iterations = 0
        while deltas:
            iterations += 1
            if iterations > max_iterations:
                raise UnsafeQueryError(
                    f"incremental maintenance exceeded {max_iterations} rounds"
                )
            delta_relations = {
                predicate: Relation(
                    f"Δ{predicate}",
                    arities.get(predicate, len(next(iter(tuples)))),
                    tuples,
                    counter=database.counter,
                )
                for predicate, tuples in deltas.items()
            }
            next_deltas: Dict[str, Set[Tuple]] = {}
            for rule in rules:
                head_relation = database.relation_or_empty(
                    rule.head.predicate, rule.head.arity
                )
                positions = [
                    i
                    for i, element in enumerate(rule.body)
                    if isinstance(element, Literal)
                    and not element.negated
                    and element.predicate in delta_relations
                ]
                for position in positions:
                    element = rule.body[position]
                    body = list(rule.body)
                    body[0], body[position] = body[position], body[0]
                    pinned = _PinnedFirstSource(
                        _FactSource(database, arities),
                        element.predicate,
                        delta_relations[element.predicate],
                    )
                    for theta in _evaluate_body(body, {}, pinned):
                        tup = ground_atom_tuple(rule.head, theta)
                        if tup not in head_relation:
                            next_deltas.setdefault(
                                rule.head.predicate, set()
                            ).add(tup)
            deltas = {}
            for predicate, tuples in next_deltas.items():
                relation = database.relation_or_empty(
                    predicate, arities.get(predicate, len(next(iter(tuples))))
                )
                confirmed = set()
                for tup in tuples:
                    if relation.add(tup):
                        confirmed.add(tup)
                        journal.append((predicate, tup))
                if confirmed:
                    deltas[predicate] = confirmed
                    derived.setdefault(predicate, set()).update(confirmed)
    except Exception:
        for predicate, tup in reversed(journal):
            database.relation(predicate).discard(tup)
        raise
    return {p: s for p, s in derived.items() if s}
