"""Generalized magic-set rewriting [BMSU, SZ1].

Transforms an adorned program plus a partially-bound query goal into a
program whose bottom-up evaluation only derives facts *relevant* to the
goal.  For each adorned IDB predicate ``p^α`` a magic predicate
``m_p__α`` over the bound argument positions is introduced:

* **seed**: ``m_p__α(c1, ..., ck).`` from the goal's constants;
* **modified rules**: each adorned rule gets the guard ``m_p__α(bound
  head args)`` prepended, and body IDB literals are renamed to their
  adorned copies;
* **magic rules**: for each IDB body literal ``q^β`` at position ``i``,
  ``m_q__β(bound args of q) :- m_p__α(...), body[0:i]`` (left-to-right
  information passing).

On the paper's canonical query this produces exactly the program
``Q_M`` of Section 2 (modulo predicate naming).
"""

from __future__ import annotations

from typing import List

from .adornment import (
    AdornedProgram,
    adorn_program,
    adorned_name,
    bound_positions,
)
from .atom import Atom, Literal
from .program import Program
from .rule import Rule


def magic_name(predicate: str, adornment: str) -> str:
    return f"m_{predicate}__{adornment}"


def _magic_head(atom: Atom, adornment: str) -> Atom:
    terms = [atom.terms[i] for i in bound_positions(adornment)]
    return Atom(magic_name(atom.predicate, adornment), terms)


def _rename_idb_literals(adorned_rule, idb) -> List:
    """Body with IDB literals renamed to their adorned copies."""
    renamed = []
    for index, element in enumerate(adorned_rule.rule.body):
        if (
            isinstance(element, Literal)
            and not element.negated
            and index in adorned_rule.literal_adornments
        ):
            adornment = adorned_rule.literal_adornments[index]
            renamed.append(
                Literal(Atom(adorned_name(element.predicate, adornment), element.terms))
            )
        else:
            renamed.append(element)
    return renamed


def magic_rewrite(program: Program, goal: Atom = None) -> Program:
    """Apply generalized magic-set rewriting; returns the new program.

    The returned program's query goal is the adorned copy of the input
    goal and its rules mention only adorned IDB predicates, magic
    predicates, and the original EDB predicates.
    """
    adorned: AdornedProgram = adorn_program(program, goal)
    goal = adorned.goal
    rewritten = Program()

    if goal.predicate not in adorned.idb:
        # Query over a purely extensional predicate: nothing to do.
        rewritten.query = goal
        return rewritten

    # Seed: the magic fact from the goal constants.
    seed = _magic_head(goal, adorned.goal_adornment)
    rewritten.add_rule(Rule(seed, ()))

    for adorned_rule in adorned.adorned_rules:
        rule = adorned_rule.rule
        head_adornment = adorned_rule.head_adornment
        renamed_body = _rename_idb_literals(adorned_rule, adorned.idb)

        # Modified rule: adorned head guarded by its magic predicate.
        new_head = Atom(adorned_name(rule.head.predicate, head_adornment), rule.head.terms)
        guard = Literal(_magic_head(rule.head, head_adornment))
        if bound_positions(head_adornment):
            rewritten.add_rule(Rule(new_head, (guard, *renamed_body)))
        else:
            rewritten.add_rule(Rule(new_head, tuple(renamed_body)))

        # Magic rules: one per adorned IDB body literal.
        for index, literal_adornment in sorted(adorned_rule.literal_adornments.items()):
            if not bound_positions(literal_adornment):
                continue
            element = rule.body[index]
            magic_head = _magic_head(element.atom, literal_adornment)
            prefix: List = []
            if bound_positions(head_adornment):
                prefix.append(guard)
            prefix.extend(renamed_body[:index])
            rewritten.add_rule(Rule(magic_head, tuple(prefix)))

    rewritten.query = Atom(
        adorned_name(goal.predicate, adorned.goal_adornment), goal.terms
    )
    return rewritten
