"""Loading and saving databases as Datalog fact files.

The on-disk format is plain Datalog facts, one per line::

    parent(ann, mona).
    age(ann, 34).
    label('with spaces', 7).

so a dumped database is directly re-parseable (and usable as a ``--facts``
file for the CLI).  Values round-trip for the types the parser knows:
lowercase identifiers, arbitrary strings (quoted as needed), and
integers.
"""

from __future__ import annotations

import io
from typing import Iterable, Optional, TextIO, Union

from ..errors import ReproError
from .database import Database
from .parser import parse_program

PathOrFile = Union[str, TextIO]


def _format_value(value) -> str:
    """Render one value as a parseable Datalog term."""
    if isinstance(value, bool):
        raise ReproError("booleans have no Datalog term syntax")
    if isinstance(value, int):
        return str(value)
    if isinstance(value, str):
        if (
            value
            and value[0].isalpha()
            and value[0].islower()
            and all(c.isalnum() or c == "_" for c in value)
        ):
            return value
        if "'" in value or "\n" in value:
            raise ReproError(
                f"string {value!r} cannot be quoted in Datalog fact syntax"
            )
        return f"'{value}'"
    raise ReproError(f"value {value!r} has no Datalog term syntax")


def format_fact(predicate: str, values: Iterable) -> str:
    """One fact line, e.g. ``parent(ann, mona).``"""
    rendered = ", ".join(_format_value(v) for v in values)
    return f"{predicate}({rendered})." if rendered else f"{predicate}."


def dump_database(database: Database, destination: PathOrFile) -> int:
    """Write every relation of ``database`` as fact lines.

    Returns the number of facts written.  Relations and tuples are
    emitted in sorted order so dumps are deterministic.
    """
    if isinstance(destination, str):
        with open(destination, "w") as handle:
            return dump_database(database, handle)
    count = 0
    for name in database.names():
        for tup in sorted(database.facts(name), key=repr):
            destination.write(format_fact(name, tup) + "\n")
            count += 1
    return count


def dumps_database(database: Database) -> str:
    """Like :func:`dump_database` but returns the text."""
    buffer = io.StringIO()
    dump_database(database, buffer)
    return buffer.getvalue()


def load_database(source: PathOrFile, database: Optional[Database] = None) -> Database:
    """Parse a fact file into a (new or given) database.

    Raises :class:`ReproError` if the file contains anything but ground
    facts.
    """
    if isinstance(source, str):
        with open(source) as handle:
            return load_database(handle, database)
    program = parse_program(source.read())
    if program.query is not None:
        raise ReproError("fact files must not contain a query goal")
    if database is None:
        database = Database()
    for rule in program.rules:
        if not rule.is_fact:
            raise ReproError(f"not a ground fact: {rule}")
        database.add_atom(rule.head)
    return database


def loads_database(text: str, database: Optional[Database] = None) -> Database:
    """Like :func:`load_database` but from a string."""
    return load_database(io.StringIO(text), database)
