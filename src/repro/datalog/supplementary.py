"""Supplementary magic-set rewriting.

The plain magic rewriting (:mod:`repro.datalog.magic_rewrite`) repeats
the join prefix of a rule once in the modified rule and once in every
magic rule derived from it.  The *supplementary* variant — the standard
refinement from the [BMSU] line of work that systems like LDL actually
implemented — materializes each prefix exactly once in a chain of
supplementary predicates::

    sup_0(V0)   :- m_p__a(bound head vars).
    sup_i(Vi)   :- sup_{i-1}(V_{i-1}), body_i.
    m_q__b(..)  :- sup_{i-1}(V_{i-1}).          % per IDB body literal i
    p__a(head)  :- sup_n(Vn).

where ``Vi`` keeps exactly the variables still needed to the right of
position ``i`` (including the head's).  Equivalent to the plain
rewriting on every database; cheaper whenever a rule has more than one
expensive body literal, since the prefix join is shared.
"""

from __future__ import annotations

from typing import List, Set

from .adornment import (
    AdornedProgram,
    adorn_program,
    adorned_name,
    bound_positions,
)
from .atom import Atom, BuiltinAtom, Literal
from .builtins import output_variables, required_bound_variables
from .magic_rewrite import _rename_idb_literals, magic_name
from .program import Program
from .rule import Rule
from .term import Variable


def _magic_head(atom: Atom, adornment: str) -> Atom:
    terms = [atom.terms[i] for i in bound_positions(adornment)]
    return Atom(magic_name(atom.predicate, adornment), terms)


def _element_variables(element) -> Set[Variable]:
    return set(element.variables())


def supplementary_magic_rewrite(program: Program, goal: Atom = None) -> Program:
    """Apply the supplementary magic-set rewriting; returns the program.

    Same query semantics as :func:`magic_rewrite`; differs only in how
    rule bodies are factored.
    """
    adorned: AdornedProgram = adorn_program(program, goal)
    goal = adorned.goal
    rewritten = Program()

    if goal.predicate not in adorned.idb:
        rewritten.query = goal
        return rewritten

    seed = _magic_head(goal, adorned.goal_adornment)
    rewritten.add_rule(Rule(seed, ()))

    for rule_index, adorned_rule in enumerate(adorned.adorned_rules):
        rule = adorned_rule.rule
        head_adornment = adorned_rule.head_adornment
        body = _rename_idb_literals(adorned_rule, adorned.idb)
        n = len(body)

        head_vars = set(rule.head.variables())
        bound_head_vars = sorted(
            {
                rule.head.terms[i]
                for i in bound_positions(head_adornment)
                if isinstance(rule.head.terms[i], Variable)
            },
            key=lambda v: v.name,
        )

        sup_base = f"sup_{rule_index}"

        def sup_name(i: int) -> str:
            return f"{sup_base}_{i}__{adorned_name(rule.head.predicate, head_adornment)}"

        # Variables still needed strictly after body position i (head
        # variables always count as needed).
        needed_after: List[Set[Variable]] = [set(head_vars) for _ in range(n + 1)]
        for i in range(n - 1, -1, -1):
            needed_after[i] = needed_after[i + 1] | _element_variables(body[i])

        # Variables available after position i.
        available: List[Set[Variable]] = [set(bound_head_vars)]
        for i, element in enumerate(body):
            produced = set(available[i])
            if isinstance(element, BuiltinAtom):
                if required_bound_variables(element) <= produced:
                    produced |= output_variables(element)
            elif not element.negated:
                produced |= _element_variables(element)
            available.append(produced)

        sup_vars: List[List[Variable]] = []
        for i in range(n + 1):
            keep = available[i] & needed_after[i]
            sup_vars.append(sorted(keep, key=lambda v: v.name))

        guarded = bool(bound_positions(head_adornment))
        # sup_0: seeded by the magic predicate (or empty when unguarded).
        sup0_head = Atom(sup_name(0), sup_vars[0])
        if guarded:
            rewritten.add_rule(
                Rule(sup0_head, (Literal(_magic_head(rule.head, head_adornment)),))
            )
        else:
            rewritten.add_rule(Rule(sup0_head, ()))

        # sup_i chains, plus a magic rule per IDB literal.
        for i, element in enumerate(body):
            previous = Literal(Atom(sup_name(i), sup_vars[i]))
            if i in adorned_rule.literal_adornments:
                literal_adornment = adorned_rule.literal_adornments[i]
                if bound_positions(literal_adornment):
                    original = rule.body[i]
                    rewritten.add_rule(
                        Rule(_magic_head(original.atom, literal_adornment), (previous,))
                    )
            rewritten.add_rule(
                Rule(Atom(sup_name(i + 1), sup_vars[i + 1]), (previous, element))
            )

        # Modified rule: the adorned head from the last supplementary.
        new_head = Atom(adorned_name(rule.head.predicate, head_adornment), rule.head.terms)
        rewritten.add_rule(
            Rule(new_head, (Literal(Atom(sup_name(n), sup_vars[n])),))
        )

    rewritten.query = Atom(
        adorned_name(goal.predicate, adorned.goal_adornment), goal.terms
    )
    return rewritten
