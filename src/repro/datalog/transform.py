"""Program transformations: unfolding, renaming, dead-rule elimination.

Classic source-to-source passes over Datalog programs, all
equivalence-preserving (the fuzz suite checks):

* :func:`unfold_predicate` — inline a *non-recursive* predicate's rules
  into every positive occurrence (resolution/unfolding).  Useful before
  CSL analysis when ``L``/``R`` are thin derived views, and as the
  classic partial-evaluation step;
* :func:`rename_predicate` — consistent renaming everywhere (heads,
  bodies, negations, the query goal);
* :func:`eliminate_dead_rules` — drop rules whose head predicate the
  query goal cannot reach (the lint module's reachability, made into a
  transformation).
"""

from __future__ import annotations

from itertools import count
from typing import Dict, List, Optional

from ..errors import ReproError
from .atom import Atom, BuiltinAtom, Literal
from .program import Program
from .rule import Rule
from .term import Variable
from .unify import unify_terms


def rename_predicate(program: Program, old: str, new: str) -> Program:
    """A copy of ``program`` with every occurrence of ``old`` renamed."""

    def rename_atom(atom: Atom) -> Atom:
        if atom.predicate == old:
            return Atom(new, atom.terms)
        return atom

    rules = []
    for rule in program.rules:
        body = []
        for element in rule.body:
            if isinstance(element, Literal):
                body.append(Literal(rename_atom(element.atom), element.negated))
            else:
                body.append(element)
        rules.append(Rule(rename_atom(rule.head), body))
    query = rename_atom(program.query) if program.query is not None else None
    return Program(rules, query)


def eliminate_dead_rules(program: Program) -> Program:
    """Drop rules that cannot contribute to the query goal."""
    if program.query is None:
        return Program(list(program.rules), None)
    graph = program.dependency_graph()
    live = {program.query.predicate}
    stack = [program.query.predicate]
    while stack:
        predicate = stack.pop()
        for dependency in graph.get(predicate, ()):
            if dependency not in live:
                live.add(dependency)
                stack.append(dependency)
    return Program(
        [rule for rule in program.rules if rule.head.predicate in live],
        program.query,
    )


def unfold_predicate(program: Program, predicate: str) -> Program:
    """Inline ``predicate``'s rules into every positive occurrence.

    Requirements: ``predicate`` must be intensional, non-recursive (not
    even transitively through itself), never negated, and not the query
    goal.  Each occurrence is replaced by each defining rule's body
    (renamed apart, head unified with the occurrence), multiplying
    rules out; the definitions themselves are dropped.
    """
    definitions = program.rules_for(predicate)
    if not definitions:
        raise ReproError(f"predicate {predicate!r} has no rules to unfold")
    if predicate in program.recursive_predicates():
        raise ReproError(f"cannot unfold recursive predicate {predicate!r}")
    if program.query is not None and program.query.predicate == predicate:
        raise ReproError("cannot unfold the query goal's predicate")
    for rule in program.rules:
        for element in rule.body:
            if (
                isinstance(element, Literal)
                and element.negated
                and element.predicate == predicate
            ):
                raise ReproError(
                    f"cannot unfold {predicate!r}: it occurs under negation"
                )

    fresh = count()

    def flatten(theta: Dict) -> Dict:
        """Resolve var -> var -> ... chains so one-step substitution is
        enough (``{Y: X, X: 1}`` must send Y to 1, not to X)."""
        resolved = {}
        for variable in theta:
            value = variable
            seen = set()
            while isinstance(value, Variable) and value in theta:
                if value in seen:
                    break
                seen.add(value)
                value = theta[value]
            resolved[variable] = value
        return resolved

    def expand(rule: Rule) -> List[Rule]:
        """All unfoldings of the first occurrence, or [rule] if none."""
        for index, element in enumerate(rule.body):
            if (
                isinstance(element, Literal)
                and not element.negated
                and element.predicate == predicate
            ):
                results: List[Rule] = []
                for definition in definitions:
                    renamed = definition.rename_apart(f"_u{next(fresh)}")
                    theta = unify_terms(renamed.head.terms, element.terms)
                    if theta is None:
                        continue
                    new_body = (
                        list(rule.body[:index])
                        + list(renamed.body)
                        + list(rule.body[index + 1 :])
                    )
                    candidate = Rule(rule.head, new_body).substitute(
                        flatten(theta)
                    )
                    results.extend(expand(candidate))
                return results
        return [rule]

    rules: List[Rule] = []
    for rule in program.rules:
        if rule.head.predicate == predicate:
            continue
        rules.extend(expand(rule))
    return Program(rules, program.query)


def unfold_all_views(program: Program, keep: Optional[set] = None) -> Program:
    """Unfold every non-recursive IDB predicate except the query goal's
    (and any in ``keep``), repeatedly, until none remain foldable."""
    keep = set(keep or ())
    if program.query is not None:
        keep.add(program.query.predicate)
    changed = True
    while changed:
        changed = False
        recursive = program.recursive_predicates()
        negated = {
            element.predicate
            for rule in program.rules
            for element in rule.body
            if isinstance(element, Literal) and element.negated
        }
        for predicate in sorted(program.idb_predicates()):
            if predicate in keep or predicate in recursive or predicate in negated:
                continue
            program = unfold_predicate(program, predicate)
            changed = True
            break
    return program
