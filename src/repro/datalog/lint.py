"""Static diagnostics for Datalog programs.

:func:`lint_program` returns a list of :class:`Diagnostic` findings:

===========  =======  ====================================================
code         level    meaning
===========  =======  ====================================================
``unsafe``   error    a rule violates range restriction
``unstrat``  error    recursion through negation
``undefined`` warning a body predicate with no rules and (if a database
                      is supplied) no facts — usually a typo
``unused``   warning  an IDB predicate never referenced by any body nor
                      by the query goal
``unreachable`` warning a rule that can never contribute to the query
                      goal (its head predicate is not in the goal's
                      dependency cone)
``singleton`` info    a variable occurring exactly once in a rule —
                      legal, but the classic typo smell
===========  =======  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..errors import SafetyError, StratificationError
from .atom import BuiltinAtom
from .database import Database
from .program import Program
from .rule import Rule
from .stratify import stratify
from .term import Variable

LEVELS = ("error", "warning", "info")


@dataclass(frozen=True)
class Diagnostic:
    level: str
    code: str
    message: str
    rule: Optional[Rule] = None

    def __str__(self):
        prefix = f"{self.level}[{self.code}]"
        if self.rule is not None:
            return f"{prefix}: {self.message}  (in: {self.rule})"
        return f"{prefix}: {self.message}"


def _singleton_variables(rule: Rule) -> List[Variable]:
    counts: Dict[Variable, int] = {}
    sources = [rule.head, *rule.body]
    for source in sources:
        terms = source.terms if not isinstance(source, BuiltinAtom) else source.args
        for term in terms:
            if isinstance(term, Variable):
                counts[term] = counts.get(term, 0) + 1
    return sorted(
        (v for v, n in counts.items() if n == 1 and not v.name.startswith("_")),
        key=lambda v: v.name,
    )


def _goal_cone(program: Program) -> Optional[Set[str]]:
    """Predicates the query goal transitively depends on."""
    if program.query is None:
        return None
    graph = program.dependency_graph()
    cone = {program.query.predicate}
    stack = [program.query.predicate]
    while stack:
        predicate = stack.pop()
        for dependency in graph.get(predicate, ()):
            if dependency not in cone:
                cone.add(dependency)
                stack.append(dependency)
    return cone


def lint_program(
    program: Program, database: Optional[Database] = None
) -> List[Diagnostic]:
    """Run every check; returns diagnostics sorted errors-first."""
    diagnostics: List[Diagnostic] = []
    idb = program.idb_predicates()

    # Safety, per rule.
    for rule in program.rules:
        try:
            rule.check_safety()
        except SafetyError as error:
            diagnostics.append(Diagnostic("error", "unsafe", str(error), rule))

    # Stratifiability, whole program.
    try:
        stratify(program)
    except StratificationError as error:
        diagnostics.append(Diagnostic("error", "unstrat", str(error)))

    # Undefined body predicates.
    for predicate in sorted(program.edb_predicates()):
        if database is not None and database.has_relation(predicate):
            continue
        if program.query is not None and program.query.predicate == predicate:
            continue
        diagnostics.append(
            Diagnostic(
                "warning",
                "undefined",
                f"predicate {predicate!r} has no rules"
                + ("" if database is None else " and no facts"),
            )
        )

    # Unused IDB predicates.
    referenced: Set[str] = set()
    for rule in program.rules:
        referenced.update(rule.body_predicates())
    if program.query is not None:
        referenced.add(program.query.predicate)
    for predicate in sorted(idb - referenced):
        diagnostics.append(
            Diagnostic(
                "warning", "unused",
                f"predicate {predicate!r} is defined but never used",
            )
        )

    # Rules outside the goal's dependency cone.
    cone = _goal_cone(program)
    if cone is not None:
        for rule in program.rules:
            if rule.head.predicate not in cone:
                diagnostics.append(
                    Diagnostic(
                        "warning", "unreachable",
                        f"rule for {rule.head.predicate!r} cannot contribute "
                        "to the query goal",
                        rule,
                    )
                )

    # Singleton variables.
    for rule in program.rules:
        for variable in _singleton_variables(rule):
            diagnostics.append(
                Diagnostic(
                    "info", "singleton",
                    f"variable {variable.name} occurs only once "
                    "(use a leading underscore to silence)",
                    rule,
                )
            )

    order = {level: i for i, level in enumerate(LEVELS)}
    diagnostics.sort(key=lambda d: (order[d.level], d.code, str(d.rule)))
    return diagnostics
