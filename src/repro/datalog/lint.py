"""Static diagnostics for Datalog programs.

:func:`lint_program` returns a list of :class:`Diagnostic` findings:

===========  =======  ====================================================
code         level    meaning
===========  =======  ====================================================
``unsafe``   error    a rule violates range restriction
``unstrat``  error    recursion through negation
``undefined`` warning a body predicate with no rules and (if a database
                      is supplied) no facts — usually a typo
``unused``   warning  an IDB predicate never referenced by any body nor
                      by the query goal
``unreachable`` warning a rule that can never contribute to the query
                      goal (its head predicate is not in the goal's
                      dependency cone)
``singleton`` info    a variable occurring exactly once in a rule —
                      legal, but the classic typo smell
===========  =======  ====================================================

Each check is exposed as its own ``check_*`` function returning a list of
diagnostics, so the multi-pass analyzer in :mod:`repro.analysis.static`
can run them individually (with shared program facts) while
:func:`lint_program` remains the standalone composition of all six.

Two deliberate behaviours, pinned by tests:

* a predicate referenced *only* through negated body literals counts as
  used — negation is a real dependency, not dead code
  (:func:`check_unused` scans every literal polarity);
* variables following the anonymous/underscore convention (``_``,
  ``_X``) are intentionally single-use and never flagged as singletons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..errors import SafetyError, StratificationError
from .atom import BuiltinAtom, Literal
from .database import Database
from .program import Program
from .rule import Rule
from .stratify import stratify
from .term import Variable

LEVELS = ("error", "warning", "info")


@dataclass(frozen=True)
class Diagnostic:
    level: str
    code: str
    message: str
    rule: Optional[Rule] = None

    def __str__(self):
        prefix = f"{self.level}[{self.code}]"
        if self.rule is not None:
            return f"{prefix}: {self.message}  (in: {self.rule})"
        return f"{prefix}: {self.message}"


def _singleton_variables(rule: Rule) -> List[Variable]:
    counts: Dict[Variable, int] = {}
    sources = [rule.head, *rule.body]
    for source in sources:
        terms = source.terms if not isinstance(source, BuiltinAtom) else source.args
        for term in terms:
            if isinstance(term, Variable):
                counts[term] = counts.get(term, 0) + 1
    return sorted(
        (v for v, n in counts.items() if n == 1 and not v.name.startswith("_")),
        key=lambda v: v.name,
    )


def goal_cone(program: Program) -> Optional[Set[str]]:
    """Predicates the query goal transitively depends on (None: no goal)."""
    if program.query is None:
        return None
    graph = program.dependency_graph()
    cone = {program.query.predicate}
    stack = [program.query.predicate]
    while stack:
        predicate = stack.pop()
        for dependency in graph.get(predicate, ()):
            if dependency not in cone:
                cone.add(dependency)
                stack.append(dependency)
    return cone


def referenced_predicates(program: Program) -> Set[str]:
    """Every predicate referenced by a body literal — **both** polarities
    — or by the query goal.

    Negated literals are real dependencies (the stratified engine reads
    the complement of the relation), so a predicate used only under
    ``not`` must not be reported as unused.
    """
    referenced: Set[str] = set()
    for rule in program.rules:
        for element in rule.body:
            if isinstance(element, Literal):
                referenced.add(element.predicate)
    if program.query is not None:
        referenced.add(program.query.predicate)
    return referenced


# --- individual checks -----------------------------------------------------


def check_rule_safety(program: Program) -> List[Diagnostic]:
    """``unsafe``: range-restriction violations, one finding per rule."""
    diagnostics: List[Diagnostic] = []
    for rule in program.rules:
        try:
            rule.check_safety()
        except SafetyError as error:
            diagnostics.append(Diagnostic("error", "unsafe", str(error), rule))
    return diagnostics


def check_stratification(program: Program) -> List[Diagnostic]:
    """``unstrat``: recursion through negation, whole program."""
    try:
        stratify(program)
    except StratificationError as error:
        return [Diagnostic("error", "unstrat", str(error))]
    return []


def check_undefined(
    program: Program, database: Optional[Database] = None
) -> List[Diagnostic]:
    """``undefined``: body predicates with no rules and no facts."""
    diagnostics: List[Diagnostic] = []
    for predicate in sorted(program.edb_predicates()):
        if database is not None and database.has_relation(predicate):
            continue
        if program.query is not None and program.query.predicate == predicate:
            continue
        diagnostics.append(
            Diagnostic(
                "warning",
                "undefined",
                f"predicate {predicate!r} has no rules"
                + ("" if database is None else " and no facts"),
            )
        )
    return diagnostics


def check_unused(program: Program) -> List[Diagnostic]:
    """``unused``: IDB predicates never referenced anywhere.

    A reference through a negated literal (or any literal polarity)
    counts as a use; only predicates with *zero* references outside
    their own definitions are flagged.
    """
    referenced = referenced_predicates(program)
    return [
        Diagnostic(
            "warning", "unused",
            f"predicate {predicate!r} is defined but never used",
        )
        for predicate in sorted(program.idb_predicates() - referenced)
    ]


def check_unreachable(program: Program) -> List[Diagnostic]:
    """``unreachable``: rules outside the goal's dependency cone."""
    cone = goal_cone(program)
    if cone is None:
        return []
    return [
        Diagnostic(
            "warning", "unreachable",
            f"rule for {rule.head.predicate!r} cannot contribute "
            "to the query goal",
            rule,
        )
        for rule in program.rules
        if rule.head.predicate not in cone
    ]


def check_singletons(program: Program) -> List[Diagnostic]:
    """``singleton``: variables occurring exactly once in a rule.

    Underscore-prefixed names (``_``, ``_X``) follow the anonymous
    variable convention and are skipped — they announce single use.
    """
    diagnostics: List[Diagnostic] = []
    for rule in program.rules:
        for variable in _singleton_variables(rule):
            diagnostics.append(
                Diagnostic(
                    "info", "singleton",
                    f"variable {variable.name} occurs only once "
                    "(use a leading underscore to silence)",
                    rule,
                )
            )
    return diagnostics


def sort_diagnostics(diagnostics: List[Diagnostic]) -> List[Diagnostic]:
    """Errors first, then by code and offending rule (stable, total)."""
    order = {level: i for i, level in enumerate(LEVELS)}
    return sorted(diagnostics, key=lambda d: (order[d.level], d.code, str(d.rule)))


def lint_program(
    program: Program, database: Optional[Database] = None
) -> List[Diagnostic]:
    """Run every check; returns diagnostics sorted errors-first."""
    diagnostics: List[Diagnostic] = []
    diagnostics.extend(check_rule_safety(program))
    diagnostics.extend(check_stratification(program))
    diagnostics.extend(check_undefined(program, database))
    diagnostics.extend(check_unused(program))
    diagnostics.extend(check_unreachable(program))
    diagnostics.extend(check_singletons(program))
    return sort_diagnostics(diagnostics)
