"""Stratified grouping/aggregation over relations.

The paper's host language LDL ([TZ]) offered grouping constructs on top
of pure Horn logic; this module provides the same capability as a
library operation rather than new syntax: aggregate a fully-evaluated
relation into a new one, then keep evaluating rules that read it.
Because the input relation must be *complete* before aggregating, this
is exactly stratified aggregation — the caller sequences strata, the
same discipline stratified negation imposes.

Example — out-degree of every node, then the hubs::

    seminaive_evaluate(program, db)
    aggregate(db, "edge", group_by=(0,), op="count", into="outdeg")
    hubs = parse_program("hub(X) :- outdeg(X, N), N >= 3. ?- hub(X).")
    answer_tuples(hubs, db)
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..errors import EvaluationError
from .database import Database

_OPS = ("count", "sum", "min", "max", "avg")


def aggregate(
    database: Database,
    relation: str,
    group_by: Sequence[int],
    op: str,
    into: str,
    value_column: Optional[int] = None,
) -> int:
    """Group ``relation`` and write one row per group into ``into``.

    ``group_by`` lists the key column indexes (may be empty: one global
    group).  ``op`` is one of count/sum/min/max/avg; all but ``count``
    need ``value_column``.  The output row layout is ``(*keys, value)``.
    Returns the number of groups written.
    """
    if op not in _OPS:
        raise EvaluationError(f"unknown aggregate {op!r}; choose from {_OPS}")
    if op != "count" and value_column is None:
        raise EvaluationError(f"aggregate {op!r} needs a value_column")
    if not database.has_relation(relation):
        raise EvaluationError(f"unknown relation {relation!r}")
    source = database.relation(relation)
    arity = source.arity
    for column in list(group_by) + ([value_column] if value_column is not None else []):
        if not 0 <= column < arity:
            raise EvaluationError(
                f"column {column} out of range for {relation}/{arity}"
            )

    groups: Dict[Tuple, list] = {}
    for tup in source.lookup(tuple(None for _ in range(arity))):
        key = tuple(tup[i] for i in group_by)
        groups.setdefault(key, []).append(tup)

    target = database.create(into, len(group_by) + 1)
    written = 0
    for key, rows in groups.items():
        if op == "count":
            value = len(rows)
        else:
            values = [row[value_column] for row in rows]
            if op == "sum":
                value = sum(values)
            elif op == "min":
                value = min(values)
            elif op == "max":
                value = max(values)
            else:  # avg — integer division keeps the value Datalog-typed
                value = sum(values) // len(values)
        if target.add((*key, value)):
            written += 1
    return written


def top_k(
    database: Database,
    relation: str,
    order_column: int,
    k: int,
    into: str,
    descending: bool = True,
) -> int:
    """Write the ``k`` extreme rows of ``relation`` (by one column) into
    ``into``; a grouping-free companion to :func:`aggregate`."""
    if not database.has_relation(relation):
        raise EvaluationError(f"unknown relation {relation!r}")
    source = database.relation(relation)
    if not 0 <= order_column < source.arity:
        raise EvaluationError(
            f"column {order_column} out of range for {relation}/{source.arity}"
        )
    rows = sorted(
        source.lookup(tuple(None for _ in range(source.arity))),
        key=lambda tup: (tup[order_column], repr(tup)),
        reverse=descending,
    )[: max(0, k)]
    target = database.create(into, source.arity)
    return sum(1 for tup in rows if target.add(tup))
