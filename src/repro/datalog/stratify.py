"""Stratification of Datalog programs with negation.

A program is stratifiable when no predicate depends on itself through a
negated literal.  We compute strongly connected components of the
predicate dependency graph (iterative Tarjan — also reused for the magic
graph analysis in :mod:`repro.core.classification`), reject negative
edges inside a component, and emit strata in dependency order.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Set, Tuple

from ..errors import StratificationError
from .program import Program


def strongly_connected_components(
    nodes: Iterable[Hashable], successors: Dict[Hashable, Set[Hashable]]
) -> List[List[Hashable]]:
    """Tarjan's SCC algorithm, iterative (no recursion-depth limits).

    Returns components in reverse topological order (every component
    precedes the components it depends on being *later* in the list —
    i.e. the returned order is a valid evaluation order).
    """
    index_counter = 0
    index: Dict[Hashable, int] = {}
    lowlink: Dict[Hashable, int] = {}
    on_stack: Set[Hashable] = set()
    stack: List[Hashable] = []
    components: List[List[Hashable]] = []

    for root in nodes:
        if root in index:
            continue
        work: List[Tuple[Hashable, Iterable]] = [(root, iter(successors.get(root, ())))]
        index[root] = lowlink[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successor_iter = work[-1]
            advanced = False
            for successor in successor_iter:
                if successor not in index:
                    index[successor] = lowlink[successor] = index_counter
                    index_counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(successors.get(successor, ()))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def condensation_order(
    nodes: Iterable[Hashable], successors: Dict[Hashable, Set[Hashable]]
) -> List[List[Hashable]]:
    """SCCs in a topological order suitable for bottom-up evaluation:
    a component appears after everything it depends on."""
    return strongly_connected_components(nodes, successors)


def stratify(program: Program) -> List[Set[str]]:
    """Partition the IDB predicates of ``program`` into evaluation strata.

    Returns a list of predicate sets; stratum ``i`` may be evaluated once
    all strata ``< i`` are complete.  EDB predicates belong to no stratum.
    Raises :class:`StratificationError` when a predicate depends on itself
    through negation.
    """
    idb = program.idb_predicates()
    successors: Dict[str, Set[str]] = {p: set() for p in idb}
    negative_edges: Set[Tuple[str, str]] = set()
    for head, body, negated in program.dependency_edges():
        if body in idb:
            successors[head].add(body)
            if negated:
                negative_edges.add((head, body))

    components = strongly_connected_components(sorted(idb), successors)
    component_of: Dict[str, int] = {}
    for component_index, component in enumerate(components):
        for predicate in component:
            component_of[predicate] = component_index

    for head, body in negative_edges:
        if component_of[head] == component_of[body]:
            raise StratificationError(
                f"predicate {head!r} depends on {body!r} through negation "
                "within a recursive component; the program is not stratifiable"
            )

    # Tarjan's output order is already a valid evaluation order; merge
    # consecutive components freely or keep them separate.  Keeping each
    # component as its own stratum is simplest and always valid.
    return [set(component) for component in components]
