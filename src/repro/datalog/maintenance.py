"""Deletion-capable incremental view maintenance: counting + DRed.

The paper's central device is *derivation counting*.  This module turns
it into a maintenance engine: a :class:`MaintenanceState` owns the IDB
of an evaluated database and keeps it exact under arbitrary EDB fact
insertions **and deletions**.

Two regimes, chosen per stratum:

* **Counting** (non-recursive strata) — the state stores, for every
  derived fact, the exact number of rule instantiations deriving it
  (the full-count generalization of the one-proof bookkeeping in
  :mod:`repro.datalog.provenance`).  An EDB delta translates into signed
  count deltas through the telescoping decomposition

  ``Δ(B1 ⋈ … ⋈ Bn) = Σ_i  old(B1…B_{i-1}) ⋈ Δ(B_i) ⋈ new(B_{i+1}…Bn)``

  where the delta of a negated literal flips polarity (a *removed*
  ``q``-tuple makes ``not q`` true, a new one falsifies it).  A fact is
  inserted when its count leaves zero and retracted when it returns to
  zero — no recomputation, no over-deletion.

* **DRed** (recursive strata) — counts are not finite witnesses under
  recursion (a cycle supports itself), so recursive strata use
  delete-and-rederive [GMS93]: over-delete everything with a derivation
  through a deleted fact, re-derive what still has alternative support,
  then propagate insertions semi-naively.

Supported fragment: safe, stratified programs (negation across strata
included, builtins included).  Two situations are *rejected* rather
than silently mis-maintained, both with :class:`MaintenanceError`:
IDB relations holding facts the rules do not derive (seeded models),
and direct mutation of an IDB predicate.  Callers — in particular
:class:`repro.service.service.SolverService` — catch the error and fall
back to full recomputation.

All reads go through charged relation views, so a
:class:`MaintenanceReport`'s ``retrievals`` is comparable with the
paper's cost unit and with a from-scratch re-evaluation.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..errors import EvaluationError, MaintenanceError, UnsafeQueryError
from .atom import BuiltinAtom, Literal
from .builtins import evaluate_builtin
from .database import Database
from .evaluation import DEFAULT_MAX_ITERATIONS, _arity_map, _ready_element_index
from .program import Program
from .rule import Rule
from .stratify import stratify
from .unify import ground_atom_tuple, lookup_pattern, match_tuple

__all__ = [
    "MaintenanceReport",
    "MaintenanceState",
    "delete_and_maintain",
    "insert_and_maintain",
]


def _matches(pattern: Tuple, tup: Tuple) -> bool:
    return all(p is None or p == v for p, v in zip(pattern, tup))


class _PriorView:
    """A relation as it stood *before* a net ``(added, removed)`` delta.

    Reconstructs the old state on the fly — old = current − added +
    removed — instead of snapshotting whole relations per update.
    Charges the relation's counter like a real relation would.
    """

    __slots__ = ("relation", "added", "removed")

    def __init__(self, relation, added: Set[Tuple], removed: Set[Tuple]):
        self.relation = relation
        self.added = added
        self.removed = removed

    def lookup(self, pattern: Tuple) -> Iterator[Tuple]:
        added = self.added
        for tup in self.relation.lookup(pattern):
            if tup not in added:
                yield tup
        extras = 0
        try:
            for tup in self.removed:
                if _matches(pattern, tup):
                    extras += 1
                    yield tup
        finally:
            self.relation.counter.charge_tuples(self.relation.name, extras)

    def contains(self, tup: Tuple) -> bool:
        tup = tuple(tup)
        counter = self.relation.counter
        if tup in self.removed:
            counter.charge_probe(self.relation.name)
            counter.charge_tuples(self.relation.name, 1)
            return True
        if tup in self.added:
            counter.charge_probe(self.relation.name)
            return False
        return self.relation.contains(tup)


class _SetView:
    """A charged read view over a plain tuple set (deltas, scratch models)."""

    __slots__ = ("name", "tuples", "counter")

    def __init__(self, name: str, tuples: Set[Tuple], counter):
        self.name = name
        self.tuples = tuples
        self.counter = counter

    def lookup(self, pattern: Tuple) -> Iterator[Tuple]:
        self.counter.charge_probe(self.name)
        count = 0
        try:
            for tup in self.tuples:
                if _matches(pattern, tup):
                    count += 1
                    yield tup
        finally:
            self.counter.charge_tuples(self.name, count)

    def contains(self, tup: Tuple) -> bool:
        self.counter.charge_probe(self.name)
        found = tuple(tup) in self.tuples
        if found:
            self.counter.charge_tuples(self.name, 1)
        return found


def _evaluate_views(items: List[Tuple], theta: Dict) -> Iterator[Dict]:
    """Like ``_evaluate_body`` but with a view attached per occurrence.

    ``items`` pairs each body element with the view it must read
    (``None`` for builtins).  The per-occurrence binding is what lets
    the telescoping delta rule read *old* state left of the pinned
    element and *new* state right of it.
    """
    if not items:
        yield theta
        return
    elements = [element for element, _view in items]
    index = _ready_element_index(elements, set(theta))
    if index < 0:
        raise EvaluationError(
            "no evaluable body element; rule is unsafe: "
            + ", ".join(str(e) for e in elements)
        )
    element, view = items[index]
    rest = items[:index] + items[index + 1 :]

    if isinstance(element, BuiltinAtom):
        for extended in evaluate_builtin(element, theta):
            yield from _evaluate_views(rest, extended)
        return

    pattern = lookup_pattern(element.terms, theta)
    if element.negated:
        if any(value is None for value in pattern):
            raise EvaluationError(f"negated literal {element} not ground")
        if not view.contains(pattern):
            yield from _evaluate_views(rest, theta)
        return

    for tup in view.lookup(pattern):
        extended = match_tuple(element.terms, tup, theta)
        if extended is not None:
            yield from _evaluate_views(rest, extended)


@dataclass
class MaintenanceReport:
    """What one :meth:`MaintenanceState.apply` call did to the database.

    ``added``/``removed`` are the *net* per-predicate fact deltas (EDB
    and IDB alike); ``overdeleted``/``rederived`` count the DRed churn
    in recursive strata; ``retrievals`` is the tuple-retrieval cost of
    the whole update in the paper's unit.
    """

    added: Dict[str, Set[Tuple]] = field(default_factory=dict)
    removed: Dict[str, Set[Tuple]] = field(default_factory=dict)
    overdeleted: int = 0
    rederived: int = 0
    rounds: int = 0
    retrievals: int = 0

    @property
    def facts_touched(self) -> int:
        return sum(len(s) for s in self.added.values()) + sum(
            len(s) for s in self.removed.values()
        )

    @property
    def changed(self) -> bool:
        return bool(self.added or self.removed)

    def summary(self) -> Dict[str, int]:
        """Flat counters, ready for metrics aggregation."""
        return {
            "facts_touched": self.facts_touched,
            "overdeleted": self.overdeleted,
            "rederived": self.rederived,
            "rounds": self.rounds,
            "retrievals": self.retrievals,
        }


class MaintenanceState:
    """Owns the IDB of ``database`` and keeps it exact under EDB churn.

    Building the state materializes the program's model into the
    database (idempotent when the database is already a fixpoint) and
    records derivation counts for every non-recursive stratum.  After
    that, :meth:`insert`, :meth:`delete`, and :meth:`apply` update the
    IDB in place — including retractions — and report what changed.

    The state must remain the only writer of the database's IDB
    relations; direct EDB mutations bypassing :meth:`apply` invalidate
    the counts (exactly like mutating a database behind a cached plan).

    Thread-safety: the serving layer maintains cached plans from
    whichever worker thread a mutation lands on, so the owned database
    and the derivation counts are guarded by a private lock (the
    ``guarded-by`` annotations are checked by ``repro lint-py``).
    :meth:`apply` takes the lock once for the whole
    validate/propagate/rollback sequence; the ``*_locked`` helpers
    assume it is held.
    """

    def __init__(
        self,
        program: Program,
        database: Database,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
    ):
        program.check_safety()
        self.program = program
        self._lock = threading.Lock()
        self.database = database  # guarded-by: _lock
        self.max_iterations = max_iterations
        self.arities = _arity_map(program)
        self.idb = program.idb_predicates()
        self.strata = stratify(program)
        self._stratum_rules: List[List[Rule]] = []
        self.recursive: Set[str] = set()
        for stratum in self.strata:
            rules = [r for r in program.rules if r.head.predicate in stratum]
            self._stratum_rules.append(rules)
            if any(
                isinstance(e, Literal) and e.predicate in stratum
                for r in rules
                for e in r.body
            ):
                self.recursive |= stratum
        #: exact derivation counts for every non-recursive IDB predicate
        self.counts: Dict[str, Dict[Tuple, int]] = {}  # guarded-by: _lock
        self._materialize_locked()

    # -- construction --------------------------------------------------

    def _materialize_locked(self) -> None:
        """Compute the model, sync it into the database, seed counts."""
        for stratum, rules in zip(self.strata, self._stratum_rules):
            if stratum & self.recursive:
                model = self._recursive_model_locked(stratum, rules)
                for predicate in stratum:
                    self._sync_relation_locked(predicate, model[predicate])
            else:
                counts: Dict[str, Dict[Tuple, int]] = {p: {} for p in stratum}
                for rule in rules:
                    items = [
                        (e, self._current_view_locked(e)) for e in rule.body
                    ]
                    per_head = counts[rule.head.predicate]
                    for theta in _evaluate_views(items, {}):
                        tup = ground_atom_tuple(rule.head, theta)
                        per_head[tup] = per_head.get(tup, 0) + 1
                for predicate in stratum:
                    self._sync_relation_locked(predicate, set(counts[predicate]))
                    self.counts[predicate] = counts[predicate]

    def _recursive_model_locked(
        self, stratum: Set[str], rules: List[Rule]
    ) -> Dict[str, Set[Tuple]]:
        """Semi-naive fixpoint of one recursive stratum, computed into
        plain sets (the database is only written after the seeded-IDB
        check in :meth:`_sync_relation_locked`)."""
        counter = self.database.counter
        model: Dict[str, Set[Tuple]] = {p: set() for p in stratum}

        def view_for(element: Literal, pinned: Optional[Dict[str, Set[Tuple]]] = None):
            predicate = element.predicate
            if predicate in stratum:
                tuples = model[predicate]
                if pinned is not None and predicate in pinned:
                    tuples = pinned[predicate]
                return _SetView(predicate, tuples, counter)
            return self.database.relation_or_empty(
                predicate, len(element.terms)
            )

        deltas: Dict[str, Set[Tuple]] = {p: set() for p in stratum}
        for rule in rules:
            items = [
                (e, None if isinstance(e, BuiltinAtom) else view_for(e))
                for e in rule.body
            ]
            # Materialize before mutating: the body views may read the
            # very sets the head writes to.
            derived = [
                ground_atom_tuple(rule.head, theta)
                for theta in _evaluate_views(items, {})
            ]
            for tup in derived:
                if tup not in model[rule.head.predicate]:
                    model[rule.head.predicate].add(tup)
                    deltas[rule.head.predicate].add(tup)

        recursive_rules = [
            r
            for r in rules
            if any(
                isinstance(e, Literal) and not e.negated and e.predicate in stratum
                for e in r.body
            )
        ]
        iterations = 0
        while any(deltas.values()):
            iterations += 1
            if iterations > self.max_iterations:
                raise UnsafeQueryError(
                    f"maintenance fixpoint exceeded {self.max_iterations} "
                    f"iterations on stratum {sorted(stratum)}"
                )
            next_deltas: Dict[str, Set[Tuple]] = {p: set() for p in stratum}
            for rule in recursive_rules:
                body = list(rule.body)
                for position, element in enumerate(body):
                    if (
                        not isinstance(element, Literal)
                        or element.negated
                        or element.predicate not in stratum
                    ):
                        continue
                    delta = deltas.get(element.predicate)
                    if not delta:
                        continue
                    pinned = {element.predicate: delta}
                    items = []
                    for j, other in enumerate(body):
                        if j == position:
                            items.append(
                                (other, _SetView(other.predicate, delta, counter))
                            )
                        elif isinstance(other, BuiltinAtom):
                            items.append((other, None))
                        else:
                            items.append((other, view_for(other)))
                    for theta in _evaluate_views(items, {}):
                        tup = ground_atom_tuple(rule.head, theta)
                        if tup not in model[rule.head.predicate]:
                            next_deltas[rule.head.predicate].add(tup)
            for predicate, tuples in next_deltas.items():
                model[predicate].update(tuples)
            deltas = next_deltas
        return model

    def _sync_relation_locked(self, predicate: str, model: Set[Tuple]) -> None:
        relation = self.database.relation_or_empty(
            predicate, self.arities[predicate]
        )
        extra = relation.as_set() - model
        if extra:
            sample = sorted(extra)[:3]
            raise MaintenanceError(
                f"IDB relation {predicate!r} holds {len(extra)} fact(s) the "
                f"rules do not derive (e.g. {sample}); seeded models are "
                "outside the maintenance fragment"
            )
        for tup in model:
            relation.add(tup)

    # -- views ---------------------------------------------------------

    def _current_view_locked(self, element):
        if isinstance(element, BuiltinAtom):
            return None
        return self.database.relation_or_empty(
            element.predicate, len(element.terms)
        )

    def _prior_view_locked(
        self,
        element,
        added: Dict[str, Set[Tuple]],
        removed: Dict[str, Set[Tuple]],
    ):
        if isinstance(element, BuiltinAtom):
            return None
        relation = self.database.relation_or_empty(
            element.predicate, len(element.terms)
        )
        plus = added.get(element.predicate)
        minus = removed.get(element.predicate)
        if not plus and not minus:
            return relation
        return _PriorView(relation, plus or set(), minus or set())

    # -- public API ----------------------------------------------------

    def insert(
        self, new_facts: Dict[str, Iterable[Tuple]]
    ) -> MaintenanceReport:
        """Insert EDB facts and propagate; see :meth:`apply`."""
        return self.apply(inserts=new_facts)

    def delete(
        self, old_facts: Dict[str, Iterable[Tuple]]
    ) -> MaintenanceReport:
        """Delete EDB facts and propagate; see :meth:`apply`."""
        return self.apply(deletes=old_facts)

    def apply(
        self,
        inserts: Optional[Dict[str, Iterable[Tuple]]] = None,
        deletes: Optional[Dict[str, Iterable[Tuple]]] = None,
    ) -> MaintenanceReport:
        """Apply an EDB delta and maintain every IDB relation in place.

        Validates the delta first (IDB predicates rejected, arities
        checked against the program and existing relations).  On *any*
        failure the database and the counts are rolled back to the
        pre-call state, so a failed update never leaves the model
        half-maintained.
        """
        ins = {p: [tuple(t) for t in ts] for p, ts in (inserts or {}).items()}
        dels = {p: [tuple(t) for t in ts] for p, ts in (deletes or {}).items()}
        with self._lock:
            self._validate_delta_locked(ins)
            self._validate_delta_locked(dels)
            undo: List[Tuple] = []
            before = self.database.counter.retrievals
            try:
                report = self._apply_locked(ins, dels, undo)
            except Exception:
                self._rollback_locked(undo)
                raise
            report.retrievals = self.database.counter.retrievals - before
        return report

    def _validate_delta_locked(self, delta: Dict[str, List[Tuple]]) -> None:
        for predicate, tuples in delta.items():
            if predicate in self.idb:
                raise EvaluationError(
                    f"cannot mutate IDB predicate {predicate!r} directly; "
                    "it is maintained from its rules"
                )
            arity = self.arities.get(predicate)
            if arity is None and self.database.has_relation(predicate):
                arity = self.database.relation(predicate).arity
            for tup in tuples:
                if arity is None:
                    arity = len(tup)
                if len(tup) != arity:
                    raise EvaluationError(
                        f"predicate {predicate!r} expects arity {arity}, "
                        f"got tuple {tup!r}"
                    )

    # -- delta propagation ---------------------------------------------

    def _apply_locked(
        self,
        inserts: Dict[str, List[Tuple]],
        deletes: Dict[str, List[Tuple]],
        undo: List[Tuple],
    ) -> MaintenanceReport:
        added: Dict[str, Set[Tuple]] = {}
        removed: Dict[str, Set[Tuple]] = {}

        for predicate, tuples in inserts.items():
            if not tuples:
                continue
            relation = self.database.relation_or_empty(
                predicate, self.arities.get(predicate, len(tuples[0]))
            )
            for tup in tuples:
                if relation.add(tup):
                    undo.append(("add", predicate, tup))
                    self._record(added, removed, predicate, tup, +1)
        for predicate, tuples in deletes.items():
            if not self.database.has_relation(predicate):
                continue
            relation = self.database.relation(predicate)
            for tup in tuples:
                if relation.discard(tup):
                    undo.append(("remove", predicate, tup))
                    self._record(added, removed, predicate, tup, -1)

        report = MaintenanceReport()
        if not (added or removed):
            return report

        for stratum, rules in zip(self.strata, self._stratum_rules):
            changed = set(added) | set(removed)
            if not changed:
                break
            body_predicates = {
                e.predicate
                for r in rules
                for e in r.body
                if isinstance(e, Literal)
            }
            if not (body_predicates & changed):
                continue
            if stratum & self.recursive:
                over, rederived, rounds = self._maintain_recursive_locked(
                    stratum, rules, added, removed, undo
                )
                report.overdeleted += over
                report.rederived += rederived
                report.rounds += rounds
            else:
                self._maintain_counting_locked(rules, added, removed, undo)
                report.rounds += 1

        report.added = {p: set(s) for p, s in added.items() if s}
        report.removed = {p: set(s) for p, s in removed.items() if s}
        return report

    @staticmethod
    def _record(
        added: Dict[str, Set[Tuple]],
        removed: Dict[str, Set[Tuple]],
        predicate: str,
        tup: Tuple,
        sign: int,
    ) -> None:
        """Track net deltas with cancellation: re-adding a tuple removed
        earlier in the same update (or vice versa) nets out to nothing,
        which keeps the prior-view reconstruction exact."""
        forward, backward = (added, removed) if sign > 0 else (removed, added)
        undone = backward.get(predicate)
        if undone is not None and tup in undone:
            undone.discard(tup)
            if not undone:
                del backward[predicate]
            return
        forward.setdefault(predicate, set()).add(tup)

    def _maintain_counting_locked(
        self,
        rules: List[Rule],
        added: Dict[str, Set[Tuple]],
        removed: Dict[str, Set[Tuple]],
        undo: List[Tuple],
    ) -> None:
        """Exact signed count deltas for a non-recursive stratum."""
        count_delta: Dict[str, Dict[Tuple, int]] = {}
        for rule in rules:
            body = list(rule.body)
            head = rule.head
            for i, element in enumerate(body):
                if not isinstance(element, Literal):
                    continue
                plus = added.get(element.predicate) or ()
                minus = removed.get(element.predicate) or ()
                if not plus and not minus:
                    continue
                if element.negated:
                    signed = [(t, -1) for t in plus] + [(t, +1) for t in minus]
                else:
                    signed = [(t, +1) for t in plus] + [(t, -1) for t in minus]
                items = []
                for j, other in enumerate(body):
                    if j == i:
                        continue
                    if isinstance(other, BuiltinAtom):
                        items.append((other, None))
                    elif j < i:
                        items.append((other, self._prior_view_locked(other, added, removed)))
                    else:
                        items.append((other, self._current_view_locked(other)))
                deltas = count_delta.setdefault(head.predicate, {})
                for tup, sign in signed:
                    theta0 = match_tuple(element.terms, tup, {})
                    if theta0 is None:
                        continue
                    for theta in _evaluate_views(items, theta0):
                        head_tup = ground_atom_tuple(head, theta)
                        deltas[head_tup] = deltas.get(head_tup, 0) + sign

        for predicate in sorted(count_delta):
            counts = self.counts[predicate]
            relation = self.database.relation_or_empty(
                predicate, self.arities[predicate]
            )
            for tup, delta in count_delta[predicate].items():
                if delta == 0:
                    continue
                old = counts.get(tup, 0)
                new = old + delta
                if new < 0:
                    raise MaintenanceError(
                        f"derivation count of {predicate}{tup!r} went "
                        f"negative ({old}{delta:+d}); counting state is "
                        "inconsistent"
                    )
                undo.append(("count", predicate, tup, old))
                if new:
                    counts[tup] = new
                else:
                    counts.pop(tup, None)
                if old == 0 and new > 0:
                    if relation.add(tup):
                        undo.append(("add", predicate, tup))
                        self._record(added, removed, predicate, tup, +1)
                elif old > 0 and new == 0:
                    if relation.discard(tup):
                        undo.append(("remove", predicate, tup))
                        self._record(added, removed, predicate, tup, -1)

    def _maintain_recursive_locked(
        self,
        stratum: Set[str],
        rules: List[Rule],
        added: Dict[str, Set[Tuple]],
        removed: Dict[str, Set[Tuple]],
        undo: List[Tuple],
    ) -> Tuple[int, int, int]:
        """Delete-and-rederive for one recursive stratum.

        Phase 1 collects the over-deletion (every stratum fact with a
        derivation through a killed lower fact, transitively), phase 2
        re-derives over-deleted facts that still have support, phase 3
        propagates insertions.  Returns (overdeleted, rederived, rounds).
        """
        database = self.database
        counter = database.counter
        rounds = 0

        def relation_of(predicate: str):
            return database.relation_or_empty(predicate, self.arities[predicate])

        def old_view(element, pinned_delta: Optional[Set[Tuple]] = None):
            """Pre-update view: stratum relations are still untouched in
            phase 1, lower predicates are rewound through the net delta."""
            if isinstance(element, BuiltinAtom):
                return None
            if pinned_delta is not None:
                return _SetView(element.predicate, pinned_delta, counter)
            if element.predicate in stratum:
                return relation_of(element.predicate)
            return self._prior_view_locked(element, added, removed)

        # -- phase 1: over-deletion ------------------------------------
        over: Dict[str, Set[Tuple]] = {p: set() for p in stratum}
        frontier: Dict[str, Set[Tuple]] = {p: set() for p in stratum}

        def collect(rule: Rule, items: List[Tuple], theta0: Dict) -> None:
            head = rule.head
            head_relation = relation_of(head.predicate)
            for theta in _evaluate_views(items, theta0):
                head_tup = ground_atom_tuple(head, theta)
                if head_tup in over[head.predicate]:
                    continue
                if head_relation.contains(head_tup):
                    over[head.predicate].add(head_tup)
                    frontier[head.predicate].add(head_tup)

        for rule in rules:
            body = list(rule.body)
            for i, element in enumerate(body):
                if not isinstance(element, Literal):
                    continue
                if element.predicate in stratum:
                    continue
                if element.negated:
                    killers = added.get(element.predicate) or ()
                else:
                    killers = removed.get(element.predicate) or ()
                if not killers:
                    continue
                items = [
                    (other, old_view(other))
                    for j, other in enumerate(body)
                    if j != i
                ]
                for tup in killers:
                    theta0 = match_tuple(element.terms, tup, {})
                    if theta0 is not None:
                        collect(rule, items, theta0)

        while any(frontier.values()):
            rounds += 1
            if rounds > self.max_iterations:
                raise UnsafeQueryError(
                    f"over-deletion exceeded {self.max_iterations} rounds "
                    f"on stratum {sorted(stratum)}"
                )
            current, frontier = frontier, {p: set() for p in stratum}
            for rule in rules:
                body = list(rule.body)
                for i, element in enumerate(body):
                    if (
                        not isinstance(element, Literal)
                        or element.negated
                        or element.predicate not in stratum
                    ):
                        continue
                    delta = current.get(element.predicate)
                    if not delta:
                        continue
                    items = []
                    for j, other in enumerate(body):
                        if j == i:
                            items.append((other, old_view(other, delta)))
                        else:
                            items.append((other, old_view(other)))
                    for tup in delta:
                        theta0 = match_tuple(element.terms, tup, {})
                        if theta0 is not None:
                            collect(rule, items, theta0)

        overdeleted = sum(len(s) for s in over.values())
        for predicate, tuples in over.items():
            relation = relation_of(predicate)
            for tup in tuples:
                if relation.discard(tup):
                    undo.append(("remove", predicate, tup))
                    self._record(added, removed, predicate, tup, -1)

        # -- phase 2: re-derivation ------------------------------------
        rederived = 0
        frontier = {p: set() for p in stratum}
        for predicate, tuples in over.items():
            relation = relation_of(predicate)
            for tup in tuples:
                if self._derivable_locked(predicate, tup, rules):
                    if relation.add(tup):
                        undo.append(("add", predicate, tup))
                        self._record(added, removed, predicate, tup, +1)
                        frontier[predicate].add(tup)
                        rederived += 1

        # -- phase 3: insertions ---------------------------------------
        def insert_head(rule: Rule, items: List[Tuple], theta0: Dict) -> None:
            head = rule.head
            head_relation = relation_of(head.predicate)
            # Materialize first: the body views may read the relation the
            # head writes to (self-joins within the stratum).
            derived = [
                ground_atom_tuple(head, theta)
                for theta in _evaluate_views(items, theta0)
            ]
            for head_tup in derived:
                if head_relation.add(head_tup):
                    undo.append(("add", head.predicate, head_tup))
                    self._record(added, removed, head.predicate, head_tup, +1)
                    frontier[head.predicate].add(head_tup)

        for rule in rules:
            body = list(rule.body)
            for i, element in enumerate(body):
                if not isinstance(element, Literal):
                    continue
                if element.predicate in stratum:
                    continue
                if element.negated:
                    births = removed.get(element.predicate) or ()
                else:
                    births = added.get(element.predicate) or ()
                if not births:
                    continue
                items = [
                    (other, self._current_view_locked(other))
                    for j, other in enumerate(body)
                    if j != i
                ]
                for tup in births:
                    theta0 = match_tuple(element.terms, tup, {})
                    if theta0 is not None:
                        insert_head(rule, items, theta0)

        while any(frontier.values()):
            rounds += 1
            if rounds > self.max_iterations:
                raise UnsafeQueryError(
                    f"insertion propagation exceeded {self.max_iterations} "
                    f"rounds on stratum {sorted(stratum)}"
                )
            current, frontier = frontier, {p: set() for p in stratum}
            for rule in rules:
                body = list(rule.body)
                for i, element in enumerate(body):
                    if (
                        not isinstance(element, Literal)
                        or element.negated
                        or element.predicate not in stratum
                    ):
                        continue
                    delta = current.get(element.predicate)
                    if not delta:
                        continue
                    items = []
                    for j, other in enumerate(body):
                        if j == i:
                            items.append(
                                (other, _SetView(other.predicate, delta, counter))
                            )
                        else:
                            items.append((other, self._current_view_locked(other)))
                    for tup in delta:
                        theta0 = match_tuple(element.terms, tup, {})
                        if theta0 is not None:
                            insert_head(rule, items, theta0)

        return overdeleted, rederived, rounds

    def _derivable_locked(self, predicate: str, tup: Tuple, rules: List[Rule]) -> bool:
        """Does any rule still derive ``tup`` in the *current* state?"""
        for rule in rules:
            if rule.head.predicate != predicate:
                continue
            theta0 = match_tuple(rule.head.terms, tup, {})
            if theta0 is None:
                continue
            items = [(e, self._current_view_locked(e)) for e in rule.body]
            for _theta in _evaluate_views(items, theta0):
                return True
        return False

    # -- rollback ------------------------------------------------------

    def _rollback_locked(self, undo: List[Tuple]) -> None:
        for entry in reversed(undo):
            kind = entry[0]
            if kind == "add":
                _, predicate, tup = entry
                self.database.relation(predicate).discard(tup)
            elif kind == "remove":
                _, predicate, tup = entry
                self.database.relation(predicate).add(tup)
            else:  # count
                _, predicate, tup, old = entry
                if old:
                    self.counts[predicate][tup] = old
                else:
                    self.counts[predicate].pop(tup, None)


def insert_and_maintain(
    program: Program,
    database: Database,
    new_facts: Dict[str, Iterable[Tuple]],
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> MaintenanceReport:
    """One-shot insertion maintenance (state built and discarded).

    Unlike the insertion-only :func:`repro.datalog.incremental
    .insert_and_maintain`, this handles stratified negation (an
    insertion can retract facts derived through ``not``) and reports
    net deltas.  For repeated updates build a :class:`MaintenanceState`
    once and call :meth:`MaintenanceState.apply`.
    """
    return MaintenanceState(program, database, max_iterations).insert(new_facts)


def delete_and_maintain(
    program: Program,
    database: Database,
    old_facts: Dict[str, Iterable[Tuple]],
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> MaintenanceReport:
    """One-shot deletion maintenance (state built and discarded)."""
    return MaintenanceState(program, database, max_iterations).delete(old_facts)
