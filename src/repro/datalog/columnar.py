"""Columnar interned storage: dense-int columns behind the Relation API.

The set backend stores relations as Python sets of value tuples; every
join step pays CPython's per-tuple costs (hashing, allocation, pointer
chasing).  This module stores the same logical relation column-wise:

* every constant is interned once, per :class:`~repro.datalog.database.
  Database`, through a :class:`SymbolTable` mapping values to dense
  integer ids (and back);
* each relation column is a flat ``int64`` array — a numpy array when
  numpy is importable, an ``array('q')`` otherwise, so the core stays
  dependency-light (the fallback keeps the backend *correct*, not fast);
* hash indexes map key columns to row-id runs in CSR form (dense
  ``starts``/``counts`` arrays for single-column keys, packed-code
  binary search for two-column keys, plain dicts otherwise), rebuilt
  lazily whenever the mutation stamp has moved.

Rows are deduplicated through packed row codes (arity 1: the id itself;
arity 2: ``id0 << 32 | id1``; otherwise a tuple of ids), which is also
what the batch engine uses for delta confirmation.  Deletion swaps the
victim row with the last row and patches the code map, so maintenance
retraction stays O(1) per tuple.

Nothing in this module touches a :class:`CostCounter`: charging stays in
:class:`~repro.datalog.relation.Relation` and the batch executor, which
is what keeps the paper's retrieval counts backend-independent.
"""

from __future__ import annotations

import os
import threading
from array import array
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .relation import StorageBackend

try:  # numpy is optional: the array-module fallback covers its absence
    import numpy as _np
except Exception:  # pragma: no cover - exercised via REPRO_COLUMNAR_FALLBACK
    _np = None  # type: ignore[assignment]


def numpy_enabled() -> bool:
    """Whether new columnar backends should vectorize through numpy.

    ``REPRO_COLUMNAR_FALLBACK=1`` forces the ``array``-module fallback
    even when numpy is importable — tests use it to keep the fallback
    path honest.
    """
    return _np is not None and not os.environ.get("REPRO_COLUMNAR_FALLBACK")


class SymbolTable:
    """Thread-safe interner: constants to dense ids and back.

    Ids are append-only and never recycled, so a snapshot of the value
    list taken at any point stays valid forever — readers may hold it
    across batch operations without re-locking.  Interning uses dict
    equality, which conflates ``1``/``True`` exactly as Python sets do,
    so a round trip through the interner preserves set semantics.
    """

    #: Two interned ids must pack into one int64 (32 bits each, sign
    #: bit untouched), so the table refuses to grow past 2^31 symbols.
    MAX_SYMBOLS = 1 << 31

    __slots__ = ("_lock", "_ids", "_values")

    def __init__(self, values: Iterable[object] = ()):
        self._lock = threading.Lock()
        self._ids: Dict[object, int] = {}  # guarded-by: _lock
        self._values: List[object] = []  # guarded-by: _lock
        if values:
            self.intern_many(values)

    def _intern_locked(self, value) -> int:
        sid = self._ids.get(value)
        if sid is None:
            sid = len(self._values)
            if sid >= self.MAX_SYMBOLS:
                raise OverflowError(
                    "symbol table exceeded 2^31 distinct constants"
                )
            self._ids[value] = sid
            self._values.append(value)
        return sid

    def intern(self, value) -> int:
        """The id of ``value``, assigning a fresh one on first sight."""
        with self._lock:
            return self._intern_locked(value)

    def intern_many(self, values: Iterable[object]) -> List[int]:
        """Intern a batch under one lock acquisition."""
        with self._lock:
            return [self._intern_locked(v) for v in values]

    def get(self, value) -> Optional[int]:
        """The id of ``value`` or None — never assigns (probe keys)."""
        with self._lock:
            return self._ids.get(value)

    def get_many(self, values: Iterable[object]) -> List[Optional[int]]:
        with self._lock:
            ids = self._ids
            return [ids.get(v) for v in values]

    def value(self, sid: int):
        with self._lock:
            return self._values[sid]

    def values_snapshot(self) -> List[object]:
        """The id-ordered value list (read-only; append-only, so the
        first ``len()`` entries never change under the caller)."""
        with self._lock:
            return self._values

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)

    def memory_bytes(self) -> int:
        with self._lock:
            return 64 + 96 * len(self._values)

    def __repr__(self):
        return f"SymbolTable(symbols={len(self)})"


def _pack_row(ids: Sequence[int]):
    """The stable dedupe code of one row of ids (see module docstring)."""
    k = len(ids)
    if k == 1:
        return ids[0]
    if k == 2:
        return (ids[0] << 32) | ids[1]
    if k == 0:
        return 0
    return tuple(ids)


class ColumnarBackend(StorageBackend):
    """Interned, column-major tuple storage with CSR hash indexes."""

    kind = "columnar"

    __slots__ = (
        "name",
        "arity",
        "version",
        "symbols",
        "vector",
        "_size",
        "_capacity",
        "_cols",
        "_code_rows",
        "_lock",
        "_indexes",
        "_sorted_codes",
        "_rows_cache",
        "_discard_epoch",
    )

    def __init__(
        self,
        name: str,
        arity: int,
        symbols: SymbolTable,
        vector: Optional[bool] = None,
    ):
        self.name = name
        self.arity = arity
        self.version = 0
        self.symbols = symbols
        self.vector = numpy_enabled() if vector is None else vector
        self._size = 0
        if self.vector:
            self._capacity = 16
            self._cols = [
                _np.empty(self._capacity, dtype=_np.int64) for _ in range(arity)
            ]
        else:
            self._capacity = 0
            self._cols = [array("q") for _ in range(arity)]
        # packed row code -> row id (row ids are dense, 0.._size-1).
        # Packable-vector backends defer building this until a per-tuple
        # operation needs it (the batch engine dedupes through sorted
        # codes instead); once built it is kept in sync.
        self._code_rows: Optional[Dict[object, int]] = (
            None if self._packable() else {}
        )
        self._lock = threading.Lock()
        # Bumped on any non-append mutation (discard).  While it stands
        # still, a stale index differs from a fresh one only by appended
        # rows, so it can be extended by merge instead of rebuilt.
        self._discard_epoch = 0
        # positions -> (version, epoch, rows, index struct)
        self._indexes: Dict[Tuple[int, ...], Tuple] = {}  # guarded-by: _lock
        # (version, epoch, rows, sorted row codes) for batch membership
        self._sorted_codes: Optional[Tuple] = None  # guarded-by: _lock
        # version-stamped decoded row list (see _materialize)
        self._rows_cache: Optional[Tuple[int, List[Tuple]]] = None

    # --- small helpers -------------------------------------------------

    @property
    def row_count(self) -> int:
        return self._size

    def _packable(self) -> bool:
        return self.vector and self.arity <= 2

    def _ensure_capacity(self, extra: int) -> None:
        if not self.vector:
            return
        needed = self._size + extra
        if needed <= self._capacity:
            return
        capacity = max(self._capacity, 16)
        while capacity < needed:
            capacity *= 2
        for j, col in enumerate(self._cols):
            grown = _np.empty(capacity, dtype=_np.int64)
            grown[: self._size] = col[: self._size]
            self._cols[j] = grown
        self._capacity = capacity

    def _row_ids(self, rowid: int) -> List[int]:
        return [int(col[rowid]) for col in self._cols]

    def _code_map(self) -> Dict[object, int]:
        """The code->rowid dict, built on first per-tuple use."""
        rows = self._code_rows
        if rows is None:
            codes = self.pack_cols(
                [col[: self._size] for col in self._cols], self._size
            )
            if self._packable():
                codes = codes.tolist()
            rows = dict(zip(codes, range(self._size)))
            self._code_rows = rows
        return rows

    def _decode(self, rowid: int, values: List[object]) -> Tuple:
        return tuple(values[col[rowid]] for col in self._cols)

    def column_ids(self, position: int):
        """The live slice of one column (ids; read-only by convention)."""
        col = self._cols[position]
        if self.vector:
            return col[: self._size]
        return col

    def take(self, position: int, rowids):
        """Gather one column at ``rowids`` (an id vector)."""
        col = self._cols[position]
        if self.vector:
            return col[: self._size][rowids]
        return [col[r] for r in rowids]

    # --- packed codes --------------------------------------------------

    def pack_cols(self, cols: Sequence, n: int):
        """Row codes for ``n`` id-rows given column-wise (same packing
        as :func:`_pack_row`; a numpy vector when packable)."""
        arity = self.arity
        if self._packable():
            if arity == 0:
                return _np.zeros(n, dtype=_np.int64)
            if arity == 1:
                return _np.asarray(cols[0], dtype=_np.int64)
            return (
                _np.asarray(cols[0], dtype=_np.int64) << 32
            ) | _np.asarray(cols[1], dtype=_np.int64)
        if arity == 0:
            return [0] * n
        if arity == 1:
            c0 = cols[0]
            return [c0[i] for i in range(n)]
        if arity == 2:
            c0, c1 = cols
            return [(int(c0[i]) << 32) | int(c1[i]) for i in range(n)]
        return [tuple(int(c[i]) for c in cols) for i in range(n)]

    def _stored_sorted_codes(self):
        """Sorted array of all stored row codes (vector mode only).

        Cached per mutation stamp; when only appends happened since the
        cached stamp, the new codes are merge-inserted instead of
        re-sorting the whole store.
        """
        with self._lock:
            cached = self._sorted_codes
            size = self._size
            if cached is not None and cached[0] == self.version:
                return cached[3]
            if (
                cached is not None
                and cached[1] == self._discard_epoch
                and cached[2] < size
            ):
                old = cached[3]
                fresh = _np.sort(
                    self.pack_cols(
                        [col[cached[2] : size] for col in self._cols],
                        size - cached[2],
                    )
                )
                codes = _np.insert(old, _np.searchsorted(old, fresh), fresh)
            else:
                codes = _np.sort(
                    self.pack_cols(
                        [col[:size] for col in self._cols], size
                    )
                )
            self._sorted_codes = (
                self.version,
                self._discard_epoch,
                size,
                codes,
            )
            return codes

    def contains_codes(self, codes) -> "object":
        """Boolean membership mask of packed ``codes`` against storage."""
        if self._packable():
            stored = self._stored_sorted_codes()
            if len(stored) == 0:
                return _np.zeros(len(codes), dtype=bool)
            pos = _np.searchsorted(stored, codes)
            safe = _np.minimum(pos, len(stored) - 1)
            return (pos < len(stored)) & (stored[safe] == codes)
        rows = self._code_map()
        return [code in rows for code in codes]

    # --- mutation ------------------------------------------------------

    def _append_rows(self, cols: Sequence, codes, k: int) -> None:
        """Append ``k`` pre-deduplicated id-rows.  ``codes`` may be a
        callable producing the row-code list, so callers on the batch
        path can skip computing it when the code map was never built."""
        size = self._size
        if self.vector:
            self._ensure_capacity(k)
            for j, col in enumerate(self._cols):
                col[size : size + k] = cols[j]
        else:
            for j, col in enumerate(self._cols):
                src = cols[j]
                col.extend(int(src[i]) for i in range(k))
        if self._code_rows is not None:
            if callable(codes):
                codes = codes()
            self._code_rows.update(zip(codes, range(size, size + k)))
        self._size = size + k
        self.version += 1

    def add(self, tup: Tuple) -> bool:
        tup = self._check(tup)
        ids = self.symbols.intern_many(tup)
        code = _pack_row(ids)
        if code in self._code_map():
            return False
        self._append_rows([[i] for i in ids], [code], 1)
        return True

    def add_new(self, tuples: Iterable[Tuple]) -> List[Tuple]:
        fresh: List[Tuple] = []
        for tup in tuples:
            tup = self._check(tup)
            if self.add(tup):
                fresh.append(tup)
        return fresh

    def insert_batch(self, cols: Sequence, n: int) -> Tuple[Optional[List], int]:
        """Bulk insert of ``n`` id-rows; returns the fresh (new) rows as
        columns plus their count.  This is the batch engine's delta
        flush: the returned rows are deduplicated within the batch (first
        occurrence wins) and against storage."""
        if n == 0:
            return None, 0
        codes = self.pack_cols(cols, n)
        if self._packable():
            uniq, first = _np.unique(codes, return_index=True)
            stored = self._stored_sorted_codes()
            if len(stored):
                pos = _np.searchsorted(stored, uniq)
                safe = _np.minimum(pos, len(stored) - 1)
                fresh_mask = ~((pos < len(stored)) & (stored[safe] == uniq))
            else:
                fresh_mask = _np.ones(len(uniq), dtype=bool)
            take = _np.sort(first[fresh_mask])
            k = int(len(take))
            if k == 0:
                return None, 0
            fresh_cols = [_np.asarray(c, dtype=_np.int64)[take] for c in cols]
            fresh_codes = lambda: codes[take].tolist()  # noqa: E731
        else:
            seen = self._code_map()
            batch_seen: set = set()
            keep: List[int] = []
            for i, code in enumerate(codes):
                if code in seen or code in batch_seen:
                    continue
                batch_seen.add(code)
                keep.append(i)
            k = len(keep)
            if k == 0:
                return None, 0
            if self.vector:
                take = _np.asarray(keep, dtype=_np.int64)
                fresh_cols = [
                    _np.asarray(c, dtype=_np.int64)[take] for c in cols
                ]
            else:
                fresh_cols = [[c[i] for i in keep] for c in cols]
            fresh_codes = [codes[i] for i in keep]
        self._append_rows(fresh_cols, fresh_codes, k)
        return fresh_cols, k

    def append_unique(self, cols: Sequence, n: int) -> None:
        """Append ``n`` id-rows known to be distinct from each other and
        from storage — the engine's pre-deduplicated delta flush (the
        bucket phase already confirmed every row fresh, so re-checking
        here would repeat the same sorted-code searches)."""
        if n == 0:
            return
        codes = None if self._code_rows is None else self.pack_cols(cols, n)
        self._append_rows(cols, codes, n)

    def load_tuples(self, tuples: Sequence[Tuple]) -> int:
        """Bulk-load value tuples: one interner pass over every constant
        and a single :meth:`insert_batch`.  This is the set→columnar
        conversion path; returns how many rows were new."""
        arity = self.arity
        n = len(tuples)
        if n == 0:
            return 0
        if arity == 0:
            _, k = self.insert_batch([], 1)
            return k
        flat = self.symbols.intern_many(
            v for row in tuples for v in self._check(row)
        )
        if self.vector:
            mat = _np.asarray(flat, dtype=_np.int64).reshape(n, arity)
            cols = [_np.ascontiguousarray(mat[:, j]) for j in range(arity)]
        else:
            cols = [array("q", flat[j::arity]) for j in range(arity)]
        _, k = self.insert_batch(cols, n)
        return k

    def discard(self, tup: Tuple) -> bool:
        tup = self._check(tup)
        ids = self.symbols.get_many(tup)
        if any(i is None for i in ids):
            return False
        code = _pack_row(ids)  # type: ignore[arg-type]
        code_map = self._code_map()
        rowid = code_map.pop(code, None)
        if rowid is None:
            return False
        last = self._size - 1
        if rowid != last:
            last_ids = self._row_ids(last)
            for j, col in enumerate(self._cols):
                col[rowid] = last_ids[j]
            code_map[_pack_row(last_ids)] = rowid
        if not self.vector:
            for col in self._cols:
                col.pop()
        self._size = last
        self.version += 1
        self._discard_epoch += 1
        return True

    # --- indexes -------------------------------------------------------

    @staticmethod
    def _packed_runs(sorted_codes):
        """(uniq, start_idx, counts) of an already-sorted code array,
        computed in one linear pass (no re-sort)."""
        n = len(sorted_codes)
        if n == 0:
            empty = _np.zeros(0, dtype=_np.int64)
            return empty, empty, empty
        flags = _np.empty(n, dtype=bool)
        flags[0] = True
        _np.not_equal(sorted_codes[1:], sorted_codes[:-1], out=flags[1:])
        start_idx = _np.nonzero(flags)[0]
        uniq = sorted_codes[start_idx]
        counts = _np.diff(_np.append(start_idx, n))
        return uniq, start_idx, counts

    def _build_index(self, positions: Tuple[int, ...]) -> Tuple:
        size = self._size
        if self.vector and len(positions) == 1:
            keys = self._cols[positions[0]][:size]
            nsym = len(self.symbols)
            counts = _np.bincount(keys, minlength=nsym)
            starts = _np.concatenate(
                ([0], _np.cumsum(counts)[:-1])
            ) if nsym else _np.zeros(0, dtype=_np.int64)
            order = _np.argsort(keys, kind="stable")
            return ("dense", starts, counts, order, keys[order])
        if self.vector and len(positions) == 2:
            codes = (self._cols[positions[0]][:size] << 32) | self._cols[
                positions[1]
            ][:size]
            order = _np.argsort(codes, kind="stable")
            sorted_codes = codes[order]
            uniq, start_idx, counts = self._packed_runs(sorted_codes)
            return ("packed", uniq, start_idx, counts, order, sorted_codes)
        buckets: Dict[Tuple[int, ...], List[int]] = {}
        cols = [self._cols[p] for p in positions]
        for rowid in range(size):
            key = tuple(int(c[rowid]) for c in cols)
            buckets.setdefault(key, []).append(rowid)
        return ("dict", buckets)

    def _extend_index(
        self, positions: Tuple[int, ...], index: Tuple, rows: int
    ) -> Tuple:
        """Fold rows ``rows.._size`` into a CSR index by merge-insert.

        Valid only when every mutation since the index was built was an
        append (the discard epoch stood still): appended row ids are all
        larger than indexed ones, so a ``side="right"`` insert preserves
        the stable (row-id) order inside each key run.
        """
        size = self._size
        k = size - rows
        new_rowids = _np.arange(rows, size, dtype=_np.int64)
        if index[0] == "dense":
            _, starts, counts, order, sorted_keys = index
            newkeys = self._cols[positions[0]][rows:size]
            nsym = len(self.symbols)
            if len(counts) < nsym:
                grown = _np.zeros(nsym, dtype=_np.int64)
                grown[: len(counts)] = counts
                counts = grown
            else:
                counts = counts.copy()
            _np.add.at(counts, newkeys, 1)
            starts = _np.concatenate(([0], _np.cumsum(counts)[:-1]))
            ko = _np.argsort(newkeys, kind="stable")
            nk = newkeys[ko]
            pos = _np.searchsorted(sorted_keys, nk, side="right")
            order = _np.insert(order, pos, new_rowids[ko])
            sorted_keys = _np.insert(sorted_keys, pos, nk)
            return ("dense", starts, counts, order, sorted_keys)
        _, _uniq, _start_idx, _counts, order, sorted_codes = index
        p0, p1 = positions
        new_codes = (self._cols[p0][rows:size] << 32) | self._cols[p1][
            rows:size
        ]
        ko = _np.argsort(new_codes, kind="stable")
        nc = new_codes[ko]
        pos = _np.searchsorted(sorted_codes, nc, side="right")
        order = _np.insert(order, pos, new_rowids[ko])
        sorted_codes = _np.insert(sorted_codes, pos, nc)
        uniq, start_idx, counts = self._packed_runs(sorted_codes)
        return ("packed", uniq, start_idx, counts, order, sorted_codes)

    def _index_for(self, positions: Tuple[int, ...]) -> Tuple:
        with self._lock:
            entry = self._indexes.get(positions)
            if entry is not None and entry[0] == self.version:
                return entry[3]
            if (
                entry is not None
                and entry[1] == self._discard_epoch
                and entry[2] < self._size
                and entry[3][0] in ("dense", "packed")
            ):
                index = self._extend_index(positions, entry[3], entry[2])
            else:
                index = self._build_index(positions)
            self._indexes[positions] = (
                self.version,
                self._discard_epoch,
                self._size,
                index,
            )
            return index

    def _rowids_for_key(self, positions: Tuple[int, ...], ids: Sequence[int]):
        """Row ids whose ``positions`` columns equal ``ids`` (one key)."""
        index = self._index_for(positions)
        kind = index[0]
        if kind == "dense":
            _, starts, counts, order, _sk = index
            key = ids[0]
            if key >= len(counts):
                return ()
            start = int(starts[key])
            return order[start : start + int(counts[key])]
        if kind == "packed":
            _, uniq, start_idx, counts, order, _sc = index
            code = (ids[0] << 32) | ids[1]
            pos = int(_np.searchsorted(uniq, code))
            if pos >= len(uniq) or int(uniq[pos]) != code:
                return ()
            start = int(start_idx[pos])
            return order[start : start + int(counts[pos])]
        return index[1].get(tuple(ids), ())

    def probe_batch(
        self, positions: Tuple[int, ...], keycols: Sequence, n: int
    ) -> Tuple:
        """Batch probe: for ``n`` key rows, the per-row match counts and
        the concatenated matching row ids (in per-row runs).

        Uncharged — the batch executor charges ``n`` probes and
        ``sum(counts)`` tuples, reproducing ``n`` calls to
        :meth:`Relation.probe`.
        """
        size = self._size
        if not positions:
            # Full scan: every key row pairs with every stored row.
            if self.vector:
                counts = _np.full(n, size, dtype=_np.int64)
                rowids = _np.tile(_np.arange(size, dtype=_np.int64), n)
                return counts, rowids
            return [size] * n, list(range(size)) * n
        if self.vector:
            index = self._index_for(positions)
            kind = index[0]
            if kind == "dense":
                _, starts, counts_arr, order, _sk = index
                keys = keycols[0]
                nk = len(counts_arr)
                if nk == 0:
                    zero = _np.zeros(n, dtype=_np.int64)
                    return zero, _np.zeros(0, dtype=_np.int64)
                safe = _np.minimum(keys, nk - 1)
                valid = keys < nk
                cnt = _np.where(valid, counts_arr[safe], 0)
                st = _np.where(valid, starts[safe], 0)
            elif kind == "packed":
                _, uniq, start_idx, counts_arr, order, _sc = index
                codes = (
                    _np.asarray(keycols[0], dtype=_np.int64) << 32
                ) | _np.asarray(keycols[1], dtype=_np.int64)
                if len(uniq) == 0:
                    zero = _np.zeros(n, dtype=_np.int64)
                    return zero, _np.zeros(0, dtype=_np.int64)
                pos = _np.searchsorted(uniq, codes)
                safe = _np.minimum(pos, len(uniq) - 1)
                valid = (pos < len(uniq)) & (uniq[safe] == codes)
                cnt = _np.where(valid, counts_arr[safe], 0)
                st = _np.where(valid, start_idx[safe], 0)
            else:
                buckets = index[1]
                counts_out: List[int] = []
                rowids_out: List[int] = []
                for i in range(n):
                    key = tuple(int(c[i]) for c in keycols)
                    run = buckets.get(key, ())
                    counts_out.append(len(run))
                    rowids_out.extend(run)
                return (
                    _np.asarray(counts_out, dtype=_np.int64),
                    _np.asarray(rowids_out, dtype=_np.int64),
                )
            total = int(cnt.sum())
            if total == 0:
                return cnt, _np.zeros(0, dtype=_np.int64)
            rep_start = _np.repeat(st, cnt)
            cum = _np.cumsum(cnt)
            offsets = _np.arange(total, dtype=_np.int64) - _np.repeat(
                cum - cnt, cnt
            )
            return cnt, order[rep_start + offsets]
        index = self._index_for(positions)
        buckets = index[1]
        counts_list: List[int] = []
        rowids_list: List[int] = []
        for i in range(n):
            key = tuple(int(c[i]) for c in keycols)
            run = buckets.get(key, ())
            counts_list.append(len(run))
            rowids_list.extend(run)
        return counts_list, rowids_list

    # --- StorageBackend reads ------------------------------------------

    def matches(self, positions: Tuple[int, ...], key: Tuple) -> Iterable[Tuple]:
        if not positions:
            return iter(self)
        ids = self.symbols.get_many(key)
        if any(i is None for i in ids):
            return ()
        if len(positions) == self.arity:
            # Reorder ids into column order (positions are ascending, so
            # the key already is column-ordered) and test membership.
            code = _pack_row(ids)  # type: ignore[arg-type]
            return (tuple(key),) if code in self._code_map() else ()
        rowids = self._rowids_for_key(positions, ids)  # type: ignore[arg-type]
        values = self.symbols.values_snapshot()
        return (self._decode(int(r), values) for r in rowids)

    def contains(self, tup: Tuple) -> bool:
        tup = tuple(tup)
        if len(tup) != self.arity:
            return False
        ids = self.symbols.get_many(tup)
        if any(i is None for i in ids):
            return False
        return _pack_row(ids) in self._code_map()  # type: ignore[arg-type]

    def _materialize(self) -> List[Tuple]:
        """Decode all rows to value tuples, column-at-a-time.

        Memoized against the mutation stamp: full scans and ``as_set``
        snapshots on an unchanged relation share one decoded list.
        """
        cached = self._rows_cache
        if cached is not None and cached[0] == self.version:
            return cached[1]
        values = self.symbols.values_snapshot()
        size = self._size
        if self.arity == 0:
            rows: List[Tuple] = [()] * size
        else:
            decoded = []
            for col in self._cols:
                ids = col[:size].tolist() if self.vector else col
                decoded.append([values[i] for i in ids])
            rows = list(zip(*decoded))
        self._rows_cache = (self.version, rows)
        return rows

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self._materialize())

    def __len__(self) -> int:
        return self._size

    def column_values(self, column: int) -> FrozenSet:
        values = self.symbols.values_snapshot()
        if self.vector:
            distinct = _np.unique(self._cols[column][: self._size])
            return frozenset(values[int(i)] for i in distinct)
        return frozenset(
            values[self._cols[column][r]] for r in range(self._size)
        )

    def clone(self) -> "ColumnarBackend":
        twin = ColumnarBackend(
            self.name, self.arity, self.symbols, vector=self.vector
        )
        size = self._size
        if self.vector:
            twin._cols = [col[:size].copy() for col in self._cols]
            twin._capacity = size
        else:
            twin._cols = [array("q", col) for col in self._cols]
        twin._size = size
        twin._code_rows = (
            dict(self._code_rows) if self._code_rows is not None else None
        )
        return twin

    def memory_bytes(self) -> int:
        if self.vector:
            total = 64 + sum(col.nbytes for col in self._cols)
        else:
            total = 64 + 8 * self._size * self.arity
        if self._code_rows is not None:
            total += 64 * len(self._code_rows)
        with self._lock:
            for _version, _epoch, _rows, index in self._indexes.values():
                if index[0] == "dict":
                    total += 64 * len(index[1]) + 8 * self._size
                elif self.vector:
                    total += sum(
                        part.nbytes
                        for part in index[1:]
                        if hasattr(part, "nbytes")
                    )
        return total

    def __repr__(self):
        mode = "numpy" if self.vector else "array"
        return (
            f"ColumnarBackend({self.name!r}, arity={self.arity}, "
            f"rows={self._size}, mode={mode})"
        )
