"""Builtin (evaluable) predicates: comparisons and arithmetic.

The counting rewriting needs arithmetic on indices — the paper writes
``CS(J+1, X1) :- CS(J, X), L(X, X1)`` and notes that "in actual Prolog we
should write J1 instead and have a goal 'J1 is J+1'".  We follow the
Prolog reading: the rewritten rule carries the builtin ``is(J1, J, '+', 1)``.

A builtin is evaluated against a substitution that already binds some of
its arguments.  Evaluation either fails, succeeds without new bindings
(pure tests such as ``<``), or succeeds extending the substitution
(``is`` binds its target).  Safety of builtins (which arguments must be
bound) is declared here and checked by rule validation.
"""

from __future__ import annotations

import operator
from typing import Callable, Dict, Iterator

from ..errors import EvaluationError
from .atom import BuiltinAtom
from .term import Constant, Variable

_COMPARISONS: Dict[str, Callable] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
}

_ARITH_OPS: Dict[str, Callable] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
}


def comparison(op: str, left, right) -> BuiltinAtom:
    """Build a comparison builtin, e.g. ``comparison("<", var("I"), 3)``."""
    if op not in _COMPARISONS:
        raise ValueError(f"unknown comparison operator {op!r}")
    return BuiltinAtom(op, (left, right))


def arithmetic(target, left, op: str, right) -> BuiltinAtom:
    """Build an arithmetic builtin ``target is left op right``."""
    if op not in _ARITH_OPS:
        raise ValueError(f"unknown arithmetic operator {op!r}")
    return BuiltinAtom("is", (target, left, Constant(op), right))


def format_builtin(builtin: BuiltinAtom) -> str:
    """Render a builtin back to surface syntax."""
    if builtin.name in _COMPARISONS:
        left, right = builtin.args
        return f"{left} {builtin.name} {right}"
    if builtin.name == "is":
        target, left, op, right = builtin.args
        return f"{target} is {left} {op.value} {right}"
    args = ", ".join(str(a) for a in builtin.args)
    return f"{builtin.name}({args})"


def _resolve(term, theta):
    """Resolve ``term`` under ``theta`` to a constant, or None if unbound."""
    if term.is_constant:
        return term
    bound = theta.get(term)
    if bound is not None and bound.is_constant:
        return bound
    return None


def evaluate_builtin(builtin: BuiltinAtom, theta: dict) -> Iterator[dict]:
    """Evaluate a builtin under substitution ``theta``.

    Yields zero or one extended substitutions.  Raises
    :class:`EvaluationError` when required arguments are unbound (an
    unsafe rule slipped past validation) or the builtin is unknown.
    """
    if builtin.name in _COMPARISONS:
        left = _resolve(builtin.args[0], theta)
        right = _resolve(builtin.args[1], theta)
        if left is None or right is None:
            raise EvaluationError(
                f"comparison {format_builtin(builtin)} has unbound arguments"
            )
        if _COMPARISONS[builtin.name](left.value, right.value):
            yield theta
        return

    if builtin.name == "is":
        target, left_t, op_t, right_t = builtin.args
        left = _resolve(left_t, theta)
        right = _resolve(right_t, theta)
        if left is None or right is None:
            raise EvaluationError(
                f"arithmetic {format_builtin(builtin)} has unbound operands"
            )
        result = Constant(_ARITH_OPS[op_t.value](left.value, right.value))
        if target.is_constant or target in theta:
            existing = target if target.is_constant else theta[target]
            if existing == result:
                yield theta
            return
        extended = dict(theta)
        extended[target] = result
        yield extended
        return

    raise EvaluationError(f"unknown builtin predicate {builtin.name!r}")


def required_bound_variables(builtin: BuiltinAtom):
    """Variables that must be bound before the builtin can run.

    For comparisons: all variables.  For ``is``: the operand variables
    (the target may be free — it gets bound by evaluation).
    """
    if builtin.name == "is":
        _, left, _, right = builtin.args
        return {t for t in (left, right) if isinstance(t, Variable)}
    return set(builtin.variables())


def output_variables(builtin: BuiltinAtom):
    """Variables a successful evaluation may bind (only ``is`` targets)."""
    if builtin.name == "is" and isinstance(builtin.args[0], Variable):
        return {builtin.args[0]}
    return set()
