"""Why-provenance: proof trees for derived facts.

A deductive database is only as trustworthy as its explanations.  This
module evaluates a program while recording, for every derived fact, one
supporting rule instantiation; :func:`Provenance.proof` then unfolds the
records into a proof tree whose leaves are EDB facts (or builtin
checks).

Used by the test-suite as yet another oracle: every answer of every
method must admit a proof, and the proof of an answer to the canonical
CSL query must exhibit exactly the Fact-2 path structure (k L-steps,
one E-step, k R-steps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import EvaluationError, UnsafeQueryError
from .atom import BuiltinAtom
from .database import Database
from .evaluation import (
    DEFAULT_MAX_ITERATIONS,
    _evaluate_body,
    _FactSource,
    _arity_map,
)
from .program import Program
from .rule import Rule
from .stratify import stratify
from .unify import ground_atom_tuple, lookup_pattern

Fact = Tuple[str, Tuple]


@dataclass
class ProofNode:
    """One node of a proof tree.

    ``kind`` is ``"edb"`` (a stored fact — leaf), ``"rule"`` (a derived
    fact, with ``rule`` and ``children`` for its body), or ``"builtin"``
    (an arithmetic/comparison check — leaf).
    """

    predicate: str
    values: Tuple
    kind: str
    rule: Optional[Rule] = None
    children: List["ProofNode"] = field(default_factory=list)

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def leaves(self) -> List["ProofNode"]:
        if not self.children:
            return [self]
        collected = []
        for child in self.children:
            collected.extend(child.leaves())
        return collected

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        args = ", ".join(str(v) for v in self.values)
        head = f"{pad}{self.predicate}({args})"
        if self.kind == "edb":
            head += "   [fact]"
        elif self.kind == "builtin":
            head += "   [builtin]"
        else:
            head += f"   [by: {self.rule}]"
        parts = [head]
        for child in self.children:
            parts.append(child.render(indent + 1))
        return "\n".join(parts)

    def __str__(self):
        return self.render()


class Provenance:
    """Evaluation result with one recorded derivation per derived fact."""

    def __init__(self, database: Database, derivations, idb):
        self.database = database
        self._derivations: Dict[Fact, Tuple[Rule, List]] = derivations
        self._idb = idb

    def is_derivable(self, predicate: str, values: Tuple) -> bool:
        if predicate in self._idb:
            return (predicate, tuple(values)) in self._derivations
        return tuple(values) in self.database.facts(predicate)

    def proof(self, predicate: str, values: Tuple) -> ProofNode:
        """Unfold the recorded derivations into a full proof tree.

        Raises :class:`EvaluationError` when the fact does not hold.
        """
        values = tuple(values)
        if predicate not in self._idb:
            if values in self.database.facts(predicate):
                return ProofNode(predicate, values, "edb")
            raise EvaluationError(f"no such fact: {predicate}{values!r}")
        key = (predicate, values)
        record = self._derivations.get(key)
        if record is None:
            raise EvaluationError(f"fact not derivable: {predicate}{values!r}")
        rule, body_records = record
        children = []
        for entry in body_records:
            entry_kind, entry_predicate, entry_values = entry
            if entry_kind == "builtin":
                children.append(
                    ProofNode(entry_predicate, entry_values, "builtin")
                )
            elif entry_kind == "negation":
                children.append(
                    ProofNode(f"not {entry_predicate}", entry_values, "builtin")
                )
            elif entry_predicate in self._idb:
                children.append(self.proof(entry_predicate, entry_values))
            else:
                children.append(ProofNode(entry_predicate, entry_values, "edb"))
        return ProofNode(predicate, values, "rule", rule=rule, children=children)


def _record_body(rule: Rule, theta) -> List[Tuple[str, str, Tuple]]:
    """The grounded body of a satisfied rule instantiation."""
    entries = []
    for element in rule.body:
        if isinstance(element, BuiltinAtom):
            grounded = element.substitute(theta)
            entries.append(
                ("builtin", grounded.name,
                 tuple(str(a) for a in grounded.args))
            )
        elif element.negated:
            entries.append(
                ("negation", element.predicate,
                 lookup_pattern(element.terms, theta))
            )
        else:
            entries.append(
                ("atom", element.predicate,
                 ground_atom_tuple(element.atom, theta))
            )
    return entries


def evaluate_with_provenance(
    program: Program,
    database: Database,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> Provenance:
    """Naive evaluation recording one derivation per new fact.

    Stratified like the plain evaluators.  A fact's recorded derivation
    only references facts that existed strictly before it (within its
    stratum, facts of earlier rounds), so :meth:`Provenance.proof` never
    loops.
    """
    program.check_safety()
    arities = _arity_map(program)
    idb = program.idb_predicates()
    derivations: Dict[Fact, Tuple[Rule, List]] = {}
    source = _FactSource(database, arities)

    for stratum in stratify(program):
        stratum_rules = [r for r in program.rules if r.head.predicate in stratum]
        for rule in stratum_rules:
            database.relation_or_empty(rule.head.predicate, rule.head.arity)
        iterations = 0
        changed = True
        while changed:
            iterations += 1
            if iterations > max_iterations:
                raise UnsafeQueryError(
                    f"provenance fixpoint exceeded {max_iterations} iterations"
                )
            changed = False
            pending = []
            for rule in stratum_rules:
                head_relation = database.relation_or_empty(
                    rule.head.predicate, rule.head.arity
                )
                for theta in list(_evaluate_body(list(rule.body), {}, source)):
                    tup = ground_atom_tuple(rule.head, theta)
                    key = (rule.head.predicate, tup)
                    if tup in head_relation or key in derivations:
                        continue
                    derivations[key] = (rule, _record_body(rule, theta))
                    pending.append((rule.head.predicate, tup))
            for predicate, tup in pending:
                relation = database.relation_or_empty(predicate, arities[predicate])
                if relation.add(tup):
                    changed = True
    return Provenance(database, derivations, idb)
