"""Batch (vectorized) semi-naive engine over the columnar backend.

The compiled kernel engine (:mod:`repro.datalog.engine`) lowers each rule
body once into a flat op list and folds it into per-tuple closures.  This
module executes *the same op lists* over whole frontiers at once: the
register file holds column vectors instead of scalars, a ``scan`` becomes
one batch hash-join (probe all frontier rows against a CSR index, expand
the ragged result), and the delta flush confirms a round's candidates as
packed row codes instead of tuple-by-tuple set insertion.

Cost parity is structural, not re-derived:

* a per-tuple ``scan`` charges one probe per frontier row and one unit
  per matched tuple (before the intra-literal equality checks filter) —
  the batch scan charges ``charge_probe_batch(name, n)`` and
  ``charge_tuples(name, total_matches)``;
* ``negcheck`` charges one probe per row plus one unit per *found*
  pattern (found rows are then dropped);
* builtins, emits, and the delta-confirmation dedupe are uncharged in
  the per-tuple engines and stay uncharged here.

Because :meth:`CostCounter.snapshot` exposes only order-independent
totals (global and per relation), equal per-relation sums mean equal
snapshots — the differential fuzz suite asserts exactly that across
interpreter, compiled, and columnar runs.

The fixpoint driver mirrors :meth:`CompiledProgram.run` round for round:
same round-0 rule pass with per-rule flush, same ``Δ<pred>`` delta
relations charged to the database counter, same within-round bucket
dedupe against head and bucket, same iteration guard.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import EvaluationError, UnsafeQueryError
from .builtins import evaluate_builtin
from .columnar import ColumnarBackend, SymbolTable
from .database import Database
from .relation import Relation
from .term import Constant

try:
    import numpy as _np
except Exception:  # pragma: no cover - exercised via REPRO_COLUMNAR_FALLBACK
    _np = None  # type: ignore[assignment]

#: A chunk of rows as (columns, row_count); columns are id vectors.
_Chunk = Tuple[List, int]


def _const_col(sid: int, n: int, vector: bool):
    if vector:
        return _np.full(n, sid, dtype=_np.int64)
    return [sid] * n


def _take_col(col, idx, vector: bool):
    if vector:
        return col[idx]
    return [col[i] for i in idx]


def _parent_vector(counts, n: int, total: int, vector: bool):
    if vector:
        return _np.repeat(_np.arange(n, dtype=_np.int64), counts)
    parent: List[int] = []
    for i, c in enumerate(counts):
        parent.extend([i] * c)
    return parent


def _filter_regs(regs: List, mask, n: int, vector: bool) -> Tuple[List, int]:
    if vector:
        mask = _np.asarray(mask, dtype=bool)
        kept = int(mask.sum())
        return [col[mask] if col is not None else None for col in regs], kept
    keep = [i for i in range(n) if mask[i]]
    return (
        [[col[i] for i in keep] if col is not None else None for col in regs],
        len(keep),
    )


def execute_kernel_batch(
    kernel,
    relations: Sequence[Relation],
    symbols: SymbolTable,
    vector: bool,
) -> Tuple[Optional[List], int]:
    """Run one compiled kernel over column vectors.

    Returns the emitted head rows as ``(columns, count)`` — duplicates
    included, exactly like the per-tuple kernel's ``out`` list; the
    caller dedupes at flush time.
    """
    regs: List = [None] * kernel.num_slots
    n = 1  # one empty frontier row, like the closure chain's entry call
    result_cols: Optional[List] = None
    result_n = 0
    for op in kernel.ops:
        if n == 0:
            # An empty frontier reaches no further ops in the per-tuple
            # engine: nothing is charged, unsafe/unbound never trip.
            break
        kind = op[0]
        if kind == "scan":
            _, ri, positions, key_template, key_fills, binds, checks = op
            rel = relations[ri]
            counter = rel.counter
            counter.charge_probe_batch(rel.name, n)
            backend = rel.backend
            if not isinstance(backend, ColumnarBackend):
                raise EvaluationError(
                    f"columnar engine requires columnar storage for "
                    f"{rel.name!r} (got {backend.kind!r})"
                )
            fill_map = dict(key_fills)
            keycols: List = []
            dead = False
            for key_index, value in enumerate(key_template):
                if value is not None:
                    sid = symbols.get(value)
                    if sid is None:
                        # Constant never interned: no stored row can
                        # match; probes above are still charged.
                        dead = True
                        break
                    keycols.append(_const_col(sid, n, vector))
                else:
                    keycols.append(regs[fill_map[key_index]])
            if dead:
                n = 0
                continue
            counts, rowids = backend.probe_batch(positions, keycols, n)
            total = len(rowids)
            counter.charge_tuples(rel.name, total)
            if total == 0:
                n = 0
                continue
            parent = _parent_vector(counts, n, total, vector)
            new_regs: List = [None] * len(regs)
            for s, col in enumerate(regs):
                if col is not None:
                    new_regs[s] = _take_col(col, parent, vector)
            for position, slot in binds:
                new_regs[slot] = backend.take(position, rowids)
            regs = new_regs
            n = total
            if checks:
                mask = None
                for position, slot in checks:
                    stored_vals = backend.take(position, rowids)
                    bound_vals = regs[slot]
                    if vector:
                        m = stored_vals == bound_vals
                    else:
                        m = [
                            stored_vals[i] == bound_vals[i] for i in range(n)
                        ]
                    if mask is None:
                        mask = m
                    elif vector:
                        mask = mask & m
                    else:
                        mask = [mask[i] and m[i] for i in range(n)]
                regs, n = _filter_regs(regs, mask, n, vector)
        elif kind == "negcheck":
            _, ri, template, fills = op
            rel = relations[ri]
            rel.counter.charge_probe_batch(rel.name, n)
            backend = rel.backend
            fill_map = dict(fills)
            cols: List = []
            dead = False
            for position, value in enumerate(template):
                if value is not None:
                    sid = symbols.get(value)
                    if sid is None:
                        dead = True
                        break
                    cols.append(_const_col(sid, n, vector))
                else:
                    cols.append(regs[fill_map[position]])
            if dead:
                # Pattern constant never interned: nothing is found, so
                # every row survives and no tuples are charged.
                continue
            codes = backend.pack_cols(cols, n)
            found = backend.contains_codes(codes)
            if isinstance(found, list):
                nfound = sum(found)
                keep_mask = [not f for f in found]
            else:
                nfound = int(found.sum())
                keep_mask = ~found
            rel.counter.charge_tuples(rel.name, nfound)
            if nfound:
                regs, n = _filter_regs(regs, keep_mask, n, vector)
        elif kind == "builtin":
            _, builtin, in_pairs, out_pairs = op
            values = symbols.values_snapshot()
            keep: List[int] = []
            outs: List[List] = [[] for _ in out_pairs]
            for i in range(n):
                theta = {
                    v: Constant(values[int(regs[slot][i])])
                    for v, slot in in_pairs
                }
                for extended in evaluate_builtin(builtin, theta):
                    keep.append(i)
                    for j, (v, _slot) in enumerate(out_pairs):
                        outs[j].append(extended[v].value)
            if not keep:
                n = 0
                continue
            idx = _np.asarray(keep, dtype=_np.int64) if vector else keep
            new_regs = [None] * len(regs)
            for s, col in enumerate(regs):
                if col is not None:
                    new_regs[s] = _take_col(col, idx, vector)
            for j, (_v, slot) in enumerate(out_pairs):
                ids = symbols.intern_many(outs[j])
                new_regs[slot] = (
                    _np.asarray(ids, dtype=_np.int64) if vector else ids
                )
            regs = new_regs
            n = len(keep)
        elif kind == "emit":
            _, template, fills = op
            fill_map = dict(fills)
            out_cols: List = []
            for position, value in enumerate(template):
                if value is not None:
                    out_cols.append(_const_col(symbols.intern(value), n, vector))
                else:
                    out_cols.append(regs[fill_map[position]])
            result_cols, result_n = out_cols, n
        elif kind == "unbound_head":
            _, term, head = op
            raise ValueError(f"unbound variable {term} instantiating {head}")
        elif kind == "unsafe":
            _, elements = op
            raise EvaluationError(
                "no evaluable body element; rule is unsafe: "
                + ", ".join(str(e) for e in elements)
            )
        else:  # pragma: no cover - compiler invariant
            raise EvaluationError(f"unknown kernel op {kind!r}")
    return result_cols, result_n


def _decode_rows(cols: Optional[List], n: int, symbols: SymbolTable) -> List[Tuple]:
    if not n or cols is None:
        return []
    if not cols:
        return [()] * n
    values = symbols.values_snapshot()
    decoded = []
    for col in cols:
        ids = col.tolist() if hasattr(col, "tolist") else col
        decoded.append([values[i] for i in ids])
    return list(zip(*decoded))


def materialize_kernel_columnar(kernel, database: Database) -> List[Tuple]:
    """Run a standalone kernel (no delta) on a columnar database and
    decode the emitted rows back to value tuples."""
    relations = [
        database.relation_or_empty(predicate, arity)
        for predicate, arity in kernel.relations
    ]
    cols, n = execute_kernel_batch(
        kernel, relations, database.symbols, database.columnar_vector
    )
    return _decode_rows(cols, n, database.symbols)


def _concat_chunks(chunks: List[_Chunk], arity: int, vector: bool) -> _Chunk:
    if len(chunks) == 1:
        return chunks[0]
    total = sum(n for _cols, n in chunks)
    if vector:
        cols = [
            _np.concatenate([chunk[0][j] for chunk in chunks])
            for j in range(arity)
        ]
    else:
        cols = []
        for j in range(arity):
            merged: List[int] = []
            for chunk_cols, _n in chunks:
                merged.extend(chunk_cols[j])
            cols.append(merged)
    return cols, total


def _resolve(kernel, database: Database, delta: Optional[Relation] = None):
    relations = []
    delta_index = kernel.delta_index
    for index, (predicate, arity) in enumerate(kernel.relations):
        if delta is not None and index == delta_index:
            relations.append(delta)
        else:
            relations.append(database.relation_or_empty(predicate, arity))
    return relations


def run_columnar(compiled, database: Database, max_iterations: int) -> Database:
    """Semi-naive fixpoint over compiled kernels, batched per round.

    Mirrors :meth:`CompiledProgram.run` round for round; derived facts
    land in ``database`` in place.
    """
    symbols = database.symbols
    vector = database.columnar_vector
    arities = compiled.arities
    for stratum in compiled.strata:
        for compiled_rule in stratum.rules:
            head = compiled_rule.rule.head
            database.relation_or_empty(head.predicate, head.arity)

        deltas: Dict[str, List[_Chunk]] = {p: [] for p in stratum.predicates}

        # Round 0: every rule once against the current database, with a
        # per-rule flush so later rules see earlier derivations.
        for compiled_rule in stratum.rules:
            head = compiled_rule.rule.head
            head_relation = database.relation_or_empty(
                head.predicate, head.arity
            )
            cols, n = execute_kernel_batch(
                compiled_rule.base,
                _resolve(compiled_rule.base, database),
                symbols,
                vector,
            )
            if n:
                fresh_cols, k = head_relation.backend.insert_batch(cols, n)
                if k:
                    deltas[head.predicate].append((fresh_cols, k))

        iterations = 0
        while any(deltas.values()):
            iterations += 1
            if iterations > max_iterations:
                raise UnsafeQueryError(
                    f"seminaive fixpoint exceeded {max_iterations} "
                    f"iterations on stratum {sorted(stratum.predicates)}"
                )
            delta_relations: Dict[str, Relation] = {}
            for predicate, chunks in deltas.items():
                if not chunks:
                    continue
                arity = arities.get(predicate, len(chunks[0][0]))
                delta_backend = ColumnarBackend(
                    f"Δ{predicate}", arity, symbols, vector=vector
                )
                for chunk_cols, chunk_n in chunks:
                    # Chunks are disjoint by construction: round-0 ones
                    # were deduplicated by the per-rule flush, later
                    # ones by the bucket phase.
                    delta_backend.append_unique(chunk_cols, chunk_n)
                delta_relations[predicate] = Relation(
                    f"Δ{predicate}",
                    arity,
                    (),
                    counter=database.counter,
                    backend=delta_backend,
                )
            next_deltas: Dict[str, List[_Chunk]] = {
                p: [] for p in stratum.predicates
            }
            bucket_codes: Dict[str, set] = {p: set() for p in stratum.predicates}
            # Vector-mode buckets keep a sorted code array instead of a
            # Python set, so the dedupe below stays fully vectorized.
            bucket_sorted: Dict[str, Optional[object]] = {
                p: None for p in stratum.predicates
            }
            for compiled_rule in stratum.recursive_rules:
                head = compiled_rule.rule.head
                head_relation = database.relation_or_empty(
                    head.predicate, head.arity
                )
                head_backend = head_relation.backend
                chunks = next_deltas[head.predicate]
                for delta_predicate, kernel in compiled_rule.delta_variants:
                    delta = delta_relations.get(delta_predicate)
                    if delta is None:
                        continue
                    cols, n = execute_kernel_batch(
                        kernel, _resolve(kernel, database, delta), symbols, vector
                    )
                    if not n:
                        continue
                    # Uncharged dedupe, as in the per-tuple driver:
                    # keep candidates not yet in the head relation and
                    # not yet in this round's bucket.
                    codes = head_backend.pack_cols(cols, n)
                    in_head = head_backend.contains_codes(codes)
                    if vector and not isinstance(codes, list):
                        cand = _np.nonzero(~_np.asarray(in_head))[0]
                        if len(cand) == 0:
                            continue
                        uniq, first = _np.unique(
                            codes[cand], return_index=True
                        )
                        seen = bucket_sorted[head.predicate]
                        if seen is not None and len(seen):
                            pos = _np.searchsorted(seen, uniq)
                            safe = _np.minimum(pos, len(seen) - 1)
                            new_mask = ~(
                                (pos < len(seen)) & (seen[safe] == uniq)
                            )
                            fresh_codes = uniq[new_mask]
                            if len(fresh_codes) == 0:
                                continue
                            bucket_sorted[head.predicate] = _np.sort(
                                _np.concatenate([seen, fresh_codes])
                            )
                        else:
                            new_mask = _np.ones(len(uniq), dtype=bool)
                            bucket_sorted[head.predicate] = uniq
                        idx = _np.sort(cand[first[new_mask]])
                        chunks.append(
                            ([col[idx] for col in cols], int(len(idx)))
                        )
                        continue
                    codeset = bucket_codes[head.predicate]
                    codes_seq = codes if isinstance(codes, list) else codes.tolist()
                    head_seq = (
                        in_head if isinstance(in_head, list) else in_head.tolist()
                    )
                    keep: List[int] = []
                    for i in range(n):
                        if head_seq[i]:
                            continue
                        code = codes_seq[i]
                        if code in codeset:
                            continue
                        codeset.add(code)
                        keep.append(i)
                    if keep:
                        idx = (
                            _np.asarray(keep, dtype=_np.int64)
                            if vector
                            else keep
                        )
                        chunks.append(
                            (
                                [_take_col(col, idx, vector) for col in cols],
                                len(keep),
                            )
                        )
            flushed: Dict[str, List[_Chunk]] = {
                p: [] for p in stratum.predicates
            }
            for predicate, chunks in next_deltas.items():
                if not chunks:
                    continue
                arity = arities.get(predicate, len(chunks[0][0]))
                relation = database.relation_or_empty(predicate, arity)
                cols, n = _concat_chunks(chunks, arity, vector)
                # Every candidate was confirmed fresh against the head
                # (unchanged since) and this round's bucket, so the
                # flush appends without a second dedupe pass.
                relation.backend.append_unique(cols, n)
                flushed[predicate].append((cols, n))
            deltas = flushed
    return database


def columnar_seminaive_evaluate(
    program,
    database: Database,
    max_iterations: int,
    plan: str = "mirror",
    compiled=None,
) -> Database:
    """Entry point used by :func:`repro.datalog.evaluation.seminaive_evaluate`.

    Converts a set-backed ``database`` to the columnar backend in place
    (constants interned through ``database.symbols``) before running.
    """
    from .engine import compile_program

    if database.backend != "columnar":
        database.to_columnar()
    if compiled is None:
        compiled = compile_program(program, database=database, plan=plan)
    return run_columnar(compiled, database, max_iterations)
