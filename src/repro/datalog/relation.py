"""Relations: tuple stores behind a storage backend, with cost accounting.

The paper measures every method in a single unit: "the cost of retrieving
a tuple in a database relation" (Section 3).  To reproduce its tables we
therefore instrument the storage layer itself.  Every probe of a relation
charges one unit to the attached :class:`CostCounter`, plus one unit per
tuple the probe yields.  All engines in this package — naive, seminaive,
counting, magic, and all eight magic counting variants — read the database
exclusively through this layer, so their measured costs are directly
comparable and have the paper's asymptotic shape.

Physical storage lives behind :class:`StorageBackend`.  The default
:class:`SetBackend` stores plain Python tuples of hashable values in a
set, with hash indexes on arbitrary column subsets built lazily on first
use and maintained incrementally.  The columnar interned backend (see
``repro.datalog.columnar``) stores the same logical relation as flat
integer columns.  Charging lives entirely in :class:`Relation` and
:class:`CostCounter`, *above* the backend boundary, which is what makes
retrieval counts backend-independent by construction.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple


class CostCounter:
    """Accumulates tuple-retrieval costs, globally and per relation.

    ``retrievals`` is the paper's cost measure.  ``probes`` counts index
    lookups (charged one unit each so that unproductive probes are not
    free); ``retrievals`` includes both components.
    """

    __slots__ = ("retrievals", "probes", "tuples", "per_relation")

    def __init__(self):
        self.retrievals = 0
        self.probes = 0
        self.tuples = 0
        self.per_relation: Dict[str, int] = {}

    def charge_probe(self, relation_name: str) -> None:
        self.charge_probe_batch(relation_name, 1)

    def charge_probe_batch(self, relation_name: str, count: int) -> None:
        """Charge ``count`` probes at once.

        The single audited entry point for probe charging: a batch engine
        that issues one physical lookup on behalf of ``count`` frontier
        rows must end up with exactly the charges a per-tuple engine
        accrues from ``count`` calls to :meth:`charge_probe`.  Keeping
        both paths on one method makes that equivalence structural.
        """
        if count <= 0:
            return
        self.probes += count
        self.retrievals += count
        self.per_relation[relation_name] = (
            self.per_relation.get(relation_name, 0) + count
        )

    def charge_tuples(self, relation_name: str, count: int) -> None:
        if count <= 0:
            return
        self.tuples += count
        self.retrievals += count
        self.per_relation[relation_name] = (
            self.per_relation.get(relation_name, 0) + count
        )

    def reset(self) -> None:
        self.retrievals = 0
        self.probes = 0
        self.tuples = 0
        self.per_relation.clear()

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict summary, convenient for reports and assertions."""
        summary = {
            "retrievals": self.retrievals,
            "probes": self.probes,
            "tuples": self.tuples,
        }
        for name, value in sorted(self.per_relation.items()):
            summary[f"relation:{name}"] = value
        return summary

    def __repr__(self):
        return (
            f"CostCounter(retrievals={self.retrievals}, "
            f"probes={self.probes}, tuples={self.tuples})"
        )


class StorageBackend:
    """Physical storage for one relation: uncharged, set-semantic tuples.

    Backends own the bytes; :class:`Relation` owns the charging.  Every
    method below is cost-free by contract — a backend must never touch a
    :class:`CostCounter`, so the paper's retrieval counts cannot depend
    on which backend a database happens to use.

    ``version`` is a mutation stamp: it increases on every successful
    add/discard, letting callers memoize derived snapshots (frozen sets,
    rebuilt indexes) without watching individual mutations.
    """

    kind: str = "abstract"
    name: str
    arity: int
    version: int

    def add(self, tup: Tuple) -> bool:
        raise NotImplementedError

    def add_new(self, tuples: Iterable[Tuple]) -> List[Tuple]:
        raise NotImplementedError

    def discard(self, tup: Tuple) -> bool:
        raise NotImplementedError

    def matches(self, positions: Tuple[int, ...], key: Tuple) -> Iterable[Tuple]:
        """Uncharged: tuples whose ``positions`` columns equal ``key``."""
        raise NotImplementedError

    def contains(self, tup: Tuple) -> bool:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Tuple]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def column_values(self, column: int) -> FrozenSet:
        raise NotImplementedError

    def clone(self) -> "StorageBackend":
        """An independent copy (shared immutable state is allowed)."""
        raise NotImplementedError

    def memory_bytes(self) -> int:
        """Estimated resident bytes for tuples, columns, and indexes."""
        raise NotImplementedError

    def _check(self, tup: Tuple) -> Tuple:
        tup = tuple(tup)
        if len(tup) != self.arity:
            raise ValueError(
                f"relation {self.name} has arity {self.arity}, got tuple {tup!r}"
            )
        return tup


class SetBackend(StorageBackend):
    """The classic store: a set of tuples plus lazy hash indexes."""

    kind = "set"

    __slots__ = ("name", "arity", "version", "_tuples", "_indexes")

    def __init__(self, name: str, arity: int):
        self.name = name
        self.arity = arity
        self.version = 0
        self._tuples: set = set()
        # positions (sorted tuple of bound column indexes) -> key -> tuples
        self._indexes: Dict[Tuple[int, ...], Dict[Tuple, List[Tuple]]] = {}

    def add(self, tup: Tuple) -> bool:
        tup = self._check(tup)
        if tup in self._tuples:
            return False
        self._tuples.add(tup)
        for positions, index in self._indexes.items():
            key = tuple(tup[i] for i in positions)
            index.setdefault(key, []).append(tup)
        self.version += 1
        return True

    def add_new(self, tuples: Iterable[Tuple]) -> List[Tuple]:
        fresh: List[Tuple] = []
        stored = self._tuples
        arity = self.arity
        for tup in tuples:
            tup = tuple(tup)
            if len(tup) != arity:
                raise ValueError(
                    f"relation {self.name} has arity {arity}, got tuple {tup!r}"
                )
            if tup in stored:
                continue
            stored.add(tup)
            fresh.append(tup)
        if fresh:
            for positions, index in self._indexes.items():
                for tup in fresh:
                    key = tuple(tup[i] for i in positions)
                    index.setdefault(key, []).append(tup)
            self.version += 1
        return fresh

    def discard(self, tup: Tuple) -> bool:
        tup = self._check(tup)
        if tup not in self._tuples:
            return False
        self._tuples.discard(tup)
        for positions, index in self._indexes.items():
            key = tuple(tup[i] for i in positions)
            bucket = index.get(key)
            if bucket is not None:
                try:
                    bucket.remove(tup)
                except ValueError:
                    pass
                if not bucket:
                    del index[key]
        self.version += 1
        return True

    def _index_for(self, positions: Tuple[int, ...]) -> Dict[Tuple, List[Tuple]]:
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            for tup in self._tuples:
                key = tuple(tup[i] for i in positions)
                index.setdefault(key, []).append(tup)
            self._indexes[positions] = index
        return index

    def matches(self, positions: Tuple[int, ...], key: Tuple) -> Iterable[Tuple]:
        if not positions:
            return self._tuples
        if len(positions) == self.arity:
            tup = tuple(key)
            return (tup,) if tup in self._tuples else ()
        return self._index_for(positions).get(key, ())

    def contains(self, tup: Tuple) -> bool:
        return tuple(tup) in self._tuples

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def column_values(self, column: int) -> FrozenSet:
        return frozenset(tup[column] for tup in self._tuples)

    def clone(self) -> "SetBackend":
        twin = SetBackend(self.name, self.arity)
        twin._tuples = set(self._tuples)
        # Lazy indexes are rebuilt on demand in the clone.
        return twin

    def memory_bytes(self) -> int:
        # Estimate, not a measurement: a CPython tuple costs roughly
        # 56 bytes + 8 per slot, set/dict entries roughly 64 each.
        n = len(self._tuples)
        total = 64 + n * (56 + 8 * self.arity) + n * 64
        for index in self._indexes.values():
            total += 64 * len(index) + 8 * n
        return total


class Relation:
    """A named relation: same-arity tuples behind a storage backend.

    ``lookup(pattern)`` is the single read primitive: ``pattern`` is a
    tuple whose bound positions carry values and whose free positions are
    ``None``.  Examples for a binary relation ``L``::

        L.lookup((b, None))   # all successors of b        (index on col 0)
        L.lookup((None, c))   # all predecessors of c      (index on col 1)
        L.lookup((b, c))      # membership test
        L.lookup((None, None))# full scan

    Every call charges the attached :class:`CostCounter` as described in
    the module docstring.
    """

    __slots__ = ("name", "arity", "counter", "_backend", "_frozen", "_frozen_version")

    def __init__(
        self,
        name: str,
        arity: int,
        tuples: Iterable[Tuple] = (),
        counter: Optional[CostCounter] = None,
        backend: Optional[StorageBackend] = None,
    ):
        if arity < 0:
            raise ValueError("arity must be non-negative")
        self.name = name
        self.arity = arity
        # A counterless relation gets a private counter: charges stay
        # observable on the instance instead of leaking into shared
        # module state (which would mix costs across unrelated runs).
        self.counter = counter if counter is not None else CostCounter()
        self._backend = backend if backend is not None else SetBackend(name, arity)
        self._frozen: Optional[FrozenSet[Tuple]] = None
        self._frozen_version = -1
        if tuples:
            self._backend.add_new(tuples)

    @property
    def backend(self) -> StorageBackend:
        return self._backend

    @property
    def backend_kind(self) -> str:
        return self._backend.kind

    def _set_backend(self, backend: StorageBackend) -> None:
        """Swap the physical store in place (same logical contents).

        Used by ``Database.to_columnar``: external holders of this
        Relation (maintenance views, compiled plans) keep working
        because the object identity and charged API are unchanged.
        """
        self._backend = backend
        self._frozen = None
        self._frozen_version = -1

    def add(self, tup: Tuple) -> bool:
        """Insert a tuple; returns True when it was new."""
        return self._backend.add(tup)

    def add_all(self, tuples: Iterable[Tuple]) -> int:
        """Insert many tuples; returns how many were new."""
        return len(self._backend.add_new(tuples))

    def add_new(self, tuples: Iterable[Tuple]) -> List[Tuple]:
        """Bulk insert; returns the tuples that were actually new.

        The semi-naive engines flush each round's delta through this:
        the returned list *is* the confirmed delta, already deduplicated
        against the stored facts, with backend indexes extended or
        invalidated in one sweep.
        """
        return self._backend.add_new(tuples)

    def discard(self, tup: Tuple) -> bool:
        """Remove a tuple; returns True when it was present.

        Backend indexes are updated (or invalidated) so the read path
        (:meth:`lookup`/:meth:`probe`) stays exact — the maintenance
        layer depends on this to retract facts without rebuilding.
        """
        return self._backend.discard(tup)

    def discard_all(self, tuples: Iterable[Tuple]) -> int:
        """Remove many tuples; returns how many were present."""
        return sum(1 for tup in tuples if self._backend.discard(tup))

    def lookup(self, pattern: Tuple) -> Iterator[Tuple]:
        """Yield tuples matching ``pattern`` (None = free position).

        Charges one probe plus one unit per tuple yielded.  A consumer
        that stops early (an existence check, a bounded scan) still pays
        for every tuple it retrieved: the charge covers exactly the
        tuples yielded and is recorded when the probe is exhausted *or
        abandoned* — the old exhaustion-only accounting let partially
        consumed probes escape the paper's cost measure entirely.
        """
        if len(pattern) != self.arity:
            raise ValueError(
                f"pattern {pattern!r} does not match arity {self.arity} "
                f"of relation {self.name}"
            )
        positions = tuple(i for i, v in enumerate(pattern) if v is not None)
        key = tuple(pattern[i] for i in positions)
        return self.probe(positions, key)

    def probe(self, positions: Tuple[int, ...], key: Tuple) -> Iterator[Tuple]:
        """Charged low-level read: tuples whose ``positions`` columns
        equal ``key`` (ascending column indexes, values in that order).

        This is :meth:`lookup` with the pattern already parsed —
        :meth:`lookup` derives ``(positions, key)`` per call, while the
        compiled join kernels precompute them once at plan time.  Both
        entry points share this body, so the charging is identical by
        construction: one probe, plus one unit per tuple yielded
        (settled on exhaustion or abandonment, as for :meth:`lookup`).
        """
        self.counter.charge_probe(self.name)
        matches = self._backend.matches(positions, key)
        count = 0
        try:
            for tup in matches:
                count += 1
                yield tup
        finally:
            self.counter.charge_tuples(self.name, count)

    def contains(self, tup: Tuple) -> bool:
        """Membership test, charged as one probe (plus one hit if found)."""
        self.counter.charge_probe(self.name)
        found = self._backend.contains(tup)
        if found:
            self.counter.charge_tuples(self.name, 1)
        return found

    # --- uncharged structural accessors -------------------------------
    # Used by tests, workload generators, and analysis code that inspects
    # relations without modelling database work.

    def __contains__(self, tup) -> bool:
        return self._backend.contains(tup)

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self._backend)

    def __len__(self) -> int:
        return len(self._backend)

    def as_set(self) -> FrozenSet[Tuple]:
        """A frozen snapshot of the stored tuples (uncharged).

        Memoized against the backend's mutation stamp: repeated calls on
        an unchanged relation return the same frozenset instead of
        materializing a fresh copy each time — snapshot export and the
        maintenance layer call this in loops.
        """
        backend = self._backend
        if self._frozen is None or self._frozen_version != backend.version:
            self._frozen = frozenset(backend)
            self._frozen_version = backend.version
        return self._frozen

    def column_values(self, column: int) -> FrozenSet:
        """Distinct values of one column (uncharged; used for statistics)."""
        return self._backend.column_values(column)

    def memory_bytes(self) -> int:
        """Estimated resident bytes of this relation's storage."""
        return self._backend.memory_bytes()

    def copy(self, counter: Optional[CostCounter] = None) -> "Relation":
        """An independent relation with the same tuples.

        Clones the backend wholesale (a set copy, or columnar array
        copies sharing the interner) instead of re-adding tuple by
        tuple through the index-maintenance path.
        """
        return Relation(
            self.name,
            self.arity,
            (),
            counter or self.counter,
            backend=self._backend.clone(),
        )

    def __repr__(self):
        return f"Relation({self.name!r}, arity={self.arity}, size={len(self)})"
