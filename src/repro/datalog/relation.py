"""Relations: set-backed tuple stores with hash indexes and cost accounting.

The paper measures every method in a single unit: "the cost of retrieving
a tuple in a database relation" (Section 3).  To reproduce its tables we
therefore instrument the storage layer itself.  Every probe of a relation
charges one unit to the attached :class:`CostCounter`, plus one unit per
tuple the probe yields.  All engines in this package — naive, seminaive,
counting, magic, and all eight magic counting variants — read the database
exclusively through this layer, so their measured costs are directly
comparable and have the paper's asymptotic shape.

Relations store plain Python tuples of hashable values.  Hash indexes on
arbitrary column subsets are built lazily on first use and maintained
incrementally by :meth:`Relation.add`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple


class CostCounter:
    """Accumulates tuple-retrieval costs, globally and per relation.

    ``retrievals`` is the paper's cost measure.  ``probes`` counts index
    lookups (charged one unit each so that unproductive probes are not
    free); ``retrievals`` includes both components.
    """

    __slots__ = ("retrievals", "probes", "tuples", "per_relation")

    def __init__(self):
        self.retrievals = 0
        self.probes = 0
        self.tuples = 0
        self.per_relation: Dict[str, int] = {}

    def charge_probe(self, relation_name: str) -> None:
        self.probes += 1
        self.retrievals += 1
        self.per_relation[relation_name] = self.per_relation.get(relation_name, 0) + 1

    def charge_tuples(self, relation_name: str, count: int) -> None:
        if count <= 0:
            return
        self.tuples += count
        self.retrievals += count
        self.per_relation[relation_name] = (
            self.per_relation.get(relation_name, 0) + count
        )

    def reset(self) -> None:
        self.retrievals = 0
        self.probes = 0
        self.tuples = 0
        self.per_relation.clear()

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict summary, convenient for reports and assertions."""
        summary = {
            "retrievals": self.retrievals,
            "probes": self.probes,
            "tuples": self.tuples,
        }
        for name, value in sorted(self.per_relation.items()):
            summary[f"relation:{name}"] = value
        return summary

    def __repr__(self):
        return (
            f"CostCounter(retrievals={self.retrievals}, "
            f"probes={self.probes}, tuples={self.tuples})"
        )


class Relation:
    """A named relation: a set of same-arity tuples with lazy hash indexes.

    ``lookup(pattern)`` is the single read primitive: ``pattern`` is a
    tuple whose bound positions carry values and whose free positions are
    ``None``.  Examples for a binary relation ``L``::

        L.lookup((b, None))   # all successors of b        (index on col 0)
        L.lookup((None, c))   # all predecessors of c      (index on col 1)
        L.lookup((b, c))      # membership test
        L.lookup((None, None))# full scan

    Every call charges the attached :class:`CostCounter` as described in
    the module docstring.
    """

    __slots__ = ("name", "arity", "_tuples", "_indexes", "counter")

    def __init__(
        self,
        name: str,
        arity: int,
        tuples: Iterable[Tuple] = (),
        counter: Optional[CostCounter] = None,
    ):
        if arity < 0:
            raise ValueError("arity must be non-negative")
        self.name = name
        self.arity = arity
        # A counterless relation gets a private counter: charges stay
        # observable on the instance instead of leaking into shared
        # module state (which would mix costs across unrelated runs).
        self.counter = counter if counter is not None else CostCounter()
        self._tuples: set = set()
        # positions (sorted tuple of bound column indexes) -> key -> list of tuples
        self._indexes: Dict[Tuple[int, ...], Dict[Tuple, List[Tuple]]] = {}
        for tup in tuples:
            self.add(tup)

    def add(self, tup: Tuple) -> bool:
        """Insert a tuple; returns True when it was new."""
        tup = tuple(tup)
        if len(tup) != self.arity:
            raise ValueError(
                f"relation {self.name} has arity {self.arity}, got tuple {tup!r}"
            )
        if tup in self._tuples:
            return False
        self._tuples.add(tup)
        for positions, index in self._indexes.items():
            key = tuple(tup[i] for i in positions)
            index.setdefault(key, []).append(tup)
        return True

    def add_all(self, tuples: Iterable[Tuple]) -> int:
        """Insert many tuples; returns how many were new.

        Bulk path: dedupes against the stored tuples first, then extends
        each lazy index in a single pass instead of touching every index
        once per tuple (as per-tuple :meth:`add` must).
        """
        return len(self.add_new(tuples))

    def add_new(self, tuples: Iterable[Tuple]) -> List[Tuple]:
        """Bulk insert; returns the tuples that were actually new.

        The semi-naive engines flush each round's delta through this:
        the returned list *is* the confirmed delta, already deduplicated
        against the stored facts, with every existing hash index
        extended in one sweep.
        """
        fresh: List[Tuple] = []
        stored = self._tuples
        arity = self.arity
        for tup in tuples:
            tup = tuple(tup)
            if len(tup) != arity:
                raise ValueError(
                    f"relation {self.name} has arity {arity}, got tuple {tup!r}"
                )
            if tup in stored:
                continue
            stored.add(tup)
            fresh.append(tup)
        if fresh:
            for positions, index in self._indexes.items():
                for tup in fresh:
                    key = tuple(tup[i] for i in positions)
                    index.setdefault(key, []).append(tup)
        return fresh

    def discard(self, tup: Tuple) -> bool:
        """Remove a tuple; returns True when it was present.

        Every lazy hash index is updated in place, so deletions keep the
        read path (:meth:`lookup`/:meth:`probe`) exact — the maintenance
        layer depends on this to retract facts without rebuilding.
        """
        tup = tuple(tup)
        if len(tup) != self.arity:
            raise ValueError(
                f"relation {self.name} has arity {self.arity}, got tuple {tup!r}"
            )
        if tup not in self._tuples:
            return False
        self._tuples.discard(tup)
        for positions, index in self._indexes.items():
            key = tuple(tup[i] for i in positions)
            bucket = index.get(key)
            if bucket is not None:
                try:
                    bucket.remove(tup)
                except ValueError:
                    pass
                if not bucket:
                    del index[key]
        return True

    def discard_all(self, tuples: Iterable[Tuple]) -> int:
        """Remove many tuples; returns how many were present."""
        return sum(1 for tup in tuples if self.discard(tup))

    def _index_for(self, positions: Tuple[int, ...]) -> Dict[Tuple, List[Tuple]]:
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            for tup in self._tuples:
                key = tuple(tup[i] for i in positions)
                index.setdefault(key, []).append(tup)
            self._indexes[positions] = index
        return index

    def lookup(self, pattern: Tuple) -> Iterator[Tuple]:
        """Yield tuples matching ``pattern`` (None = free position).

        Charges one probe plus one unit per tuple yielded.  A consumer
        that stops early (an existence check, a bounded scan) still pays
        for every tuple it retrieved: the charge covers exactly the
        tuples yielded and is recorded when the probe is exhausted *or
        abandoned* — the old exhaustion-only accounting let partially
        consumed probes escape the paper's cost measure entirely.
        """
        if len(pattern) != self.arity:
            raise ValueError(
                f"pattern {pattern!r} does not match arity {self.arity} "
                f"of relation {self.name}"
            )
        positions = tuple(i for i, v in enumerate(pattern) if v is not None)
        key = tuple(pattern[i] for i in positions)
        return self.probe(positions, key)

    def probe(self, positions: Tuple[int, ...], key: Tuple) -> Iterator[Tuple]:
        """Charged low-level read: tuples whose ``positions`` columns
        equal ``key`` (ascending column indexes, values in that order).

        This is :meth:`lookup` with the pattern already parsed —
        :meth:`lookup` derives ``(positions, key)`` per call, while the
        compiled join kernels precompute them once at plan time.  Both
        entry points share this body, so the charging is identical by
        construction: one probe, plus one unit per tuple yielded
        (settled on exhaustion or abandonment, as for :meth:`lookup`).
        """
        self.counter.charge_probe(self.name)
        if not positions:
            matches: Iterable[Tuple] = self._tuples
        elif len(positions) == self.arity:
            tup = tuple(key)
            matches = (tup,) if tup in self._tuples else ()
        else:
            matches = self._index_for(positions).get(key, ())
        count = 0
        try:
            for tup in matches:
                count += 1
                yield tup
        finally:
            self.counter.charge_tuples(self.name, count)

    def contains(self, tup: Tuple) -> bool:
        """Membership test, charged as one probe (plus one hit if found)."""
        self.counter.charge_probe(self.name)
        found = tuple(tup) in self._tuples
        if found:
            self.counter.charge_tuples(self.name, 1)
        return found

    # --- uncharged structural accessors -------------------------------
    # Used by tests, workload generators, and analysis code that inspects
    # relations without modelling database work.

    def __contains__(self, tup) -> bool:
        return tuple(tup) in self._tuples

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def as_set(self) -> set:
        return set(self._tuples)

    def column_values(self, column: int) -> set:
        """Distinct values of one column (uncharged; used for statistics)."""
        return {tup[column] for tup in self._tuples}

    def copy(self, counter: Optional[CostCounter] = None) -> "Relation":
        return Relation(
            self.name, self.arity, self._tuples, counter or self.counter
        )

    def __repr__(self):
        return f"Relation({self.name!r}, arity={self.arity}, size={len(self)})"
