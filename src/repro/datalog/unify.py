"""Substitutions, matching, and unification for flat Datalog terms.

A substitution maps :class:`Variable` to :class:`Constant` (the engine is
ground-bottom-up, so variables never bind to variables during evaluation;
full unification is provided for the rewriting passes, where terms on both
sides may contain variables).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .atom import Atom
from .term import Constant, Term, Variable

Substitution = Dict[Variable, Term]


def apply_substitution(term: Term, theta: Substitution) -> Term:
    """Resolve a single term under ``theta`` (one step; enough for flat
    ground substitutions)."""
    if term.is_variable:
        return theta.get(term, term)
    return term


def match_tuple(
    terms: Tuple[Term, ...], values: Tuple, theta: Substitution
) -> Optional[Substitution]:
    """Match atom argument terms against a ground database tuple.

    ``values`` holds raw Python values (the storage representation).
    Returns the extended substitution or None when matching fails.  The
    input substitution is never mutated.
    """
    extension: Optional[Substitution] = None
    for term, value in zip(terms, values):
        if term.is_constant:
            if term.value != value:
                return None
            continue
        bound = theta.get(term)
        if bound is None and extension is not None:
            bound = extension.get(term)
        if bound is not None:
            if bound.value != value:
                return None
            continue
        if extension is None:
            extension = {}
        extension[term] = Constant(value)
    if extension is None:
        return theta
    merged = dict(theta)
    merged.update(extension)
    return merged


def lookup_pattern(terms: Tuple[Term, ...], theta: Substitution) -> Tuple:
    """Build a :meth:`Relation.lookup` pattern from atom terms under
    ``theta``: bound positions carry raw values, free positions None."""
    pattern = []
    for term in terms:
        if term.is_constant:
            pattern.append(term.value)
            continue
        bound = theta.get(term)
        pattern.append(bound.value if bound is not None else None)
    return tuple(pattern)


def ground_atom_tuple(atom: Atom, theta: Substitution) -> Tuple:
    """Instantiate an atom's arguments to a raw value tuple.

    Raises ValueError when a variable remains unbound — that would mean an
    unsafe rule escaped validation.
    """
    values = []
    for term in atom.terms:
        if term.is_constant:
            values.append(term.value)
            continue
        bound = theta.get(term)
        if bound is None:
            raise ValueError(f"unbound variable {term} instantiating {atom}")
        values.append(bound.value)
    return tuple(values)


def unify_terms(
    left: Tuple[Term, ...], right: Tuple[Term, ...], theta: Optional[Substitution] = None
) -> Optional[Substitution]:
    """Full (flat) unification of two term tuples; used by rewrites.

    Variables may bind to variables or constants.  Returns the most
    general unifier extending ``theta``, or None.
    """
    if len(left) != len(right):
        return None
    theta = dict(theta) if theta else {}

    def resolve(term: Term) -> Term:
        while term.is_variable and term in theta:
            term = theta[term]
        return term

    for l_term, r_term in zip(left, right):
        l_resolved = resolve(l_term)
        r_resolved = resolve(r_term)
        if l_resolved == r_resolved:
            continue
        if l_resolved.is_variable:
            theta[l_resolved] = r_resolved
        elif r_resolved.is_variable:
            theta[r_resolved] = l_resolved
        else:
            return None
    return theta


def unify_atoms(
    left: Atom, right: Atom, theta: Optional[Substitution] = None
) -> Optional[Substitution]:
    """Unify two atoms (same predicate and arity required)."""
    if left.predicate != right.predicate or left.arity != right.arity:
        return None
    return unify_terms(left.terms, right.terms, theta)
