"""The counting rewriting [BMSU, SZ1, SZ2] for CSL queries.

For the paper's canonical query it produces exactly the program ``Q_C``
of Section 2::

    CS(0, a).
    CS(J1, X1)  :- CS(J, X), L(X, X1), J1 is J + 1.
    P_C(J, Y)   :- CS(J, X), E(X, Y).
    P_C(J1, Y)  :- P_C(J, Y1), R(Y, Y1), J >= 1, J1 is J - 1.
    Answer(Y)   :- P_C(0, Y).
    ?- Answer(Y).

(The paper writes ``CS(J+1, ...)`` and ``P_C(J-1, ...)`` in the heads
and notes "in actual Prolog we should write J1 instead and have a goal
'J1 is J+1'" — we follow the Prolog reading.  The guard ``J >= 1`` stops
the downward count at zero; the paper's procedural implementation stops
there implicitly, and indices below zero can never reach the answer.)

The rewriting generalizes to the full CSL class via
:func:`repro.datalog.linear.analyze_linear`: multiple bound/free columns
and conjunctive or derived ``L``/``E``/``R`` parts are all supported.
Rules defining derived body predicates are carried over unchanged.

**Safety caveat (the point of the paper):** the rewritten program is
*unsafe* when the magic graph is cyclic — the ``CS`` fixpoint derives an
unbounded set of indexed facts.  Evaluate it with an iteration budget.
"""

from __future__ import annotations

from typing import Optional

from .atom import Atom, Literal
from .builtins import arithmetic, comparison
from .linear import LinearRecursion, analyze_linear
from .program import Program
from .rule import Rule
from .term import Constant, Variable


def counting_set_name(predicate: str) -> str:
    return f"cs_{predicate}"


def counted_name(predicate: str) -> str:
    return f"cnt_{predicate}"


def _fresh_index_variables(analysis: LinearRecursion):
    """Two index variables guaranteed not to clash with rule variables."""
    used = {v.name for v in analysis.recursive_rule.variables()}
    for rule in analysis.exit_rules:
        used |= {v.name for v in rule.variables()}
    base = "J"
    while base in used or base + "1" in used:
        base = "_" + base
    return Variable(base), Variable(base + "1")


def counting_rewrite(
    program: Program,
    goal: Atom = None,
    analysis: Optional[LinearRecursion] = None,
) -> Program:
    """Apply the counting rewriting; returns the rewritten program.

    ``analysis`` may be supplied when the caller has already run
    :func:`analyze_linear` (avoids re-analysis).
    """
    if analysis is None:
        analysis = analyze_linear(program, goal)
    goal = analysis.goal
    predicate = analysis.predicate
    cs = counting_set_name(predicate)
    cnt = counted_name(predicate)
    index_var, next_index_var = _fresh_index_variables(analysis)

    rewritten = Program()

    # Carry over the rules of derived (non-recursive) predicates.
    for rule in program.rules:
        if rule.head.predicate != predicate:
            rewritten.add_rule(rule)

    # (1) CS(0, a...).
    goal_constants = tuple(goal.terms[i] for i in analysis.bound)
    rewritten.add_rule(Rule(Atom(cs, (Constant(0), *goal_constants)), ()))

    # (2) CS(J1, X1...) :- CS(J, X...), L..., J1 is J + 1.
    rewritten.add_rule(
        Rule(
            Atom(cs, (next_index_var, *analysis.rec_bound_terms)),
            (
                Literal(Atom(cs, (index_var, *analysis.head_bound_terms))),
                *analysis.left_elements,
                arithmetic(next_index_var, index_var, "+", 1),
            ),
        )
    )

    # (3) P_C(J, Y...) :- CS(J, Xexit...), exit body.   (one per exit rule)
    for exit_rule in analysis.exit_rules:
        exit_bound = tuple(exit_rule.head.terms[i] for i in analysis.bound)
        exit_free = tuple(exit_rule.head.terms[i] for i in analysis.free)
        rewritten.add_rule(
            Rule(
                Atom(cnt, (index_var, *exit_free)),
                (
                    Literal(Atom(cs, (index_var, *exit_bound))),
                    *exit_rule.body,
                ),
            )
        )

    # (4) P_C(J1, Y...) :- P_C(J, Y1...), R..., J >= 1, J1 is J - 1.
    rewritten.add_rule(
        Rule(
            Atom(cnt, (next_index_var, *analysis.head_free_terms)),
            (
                Literal(Atom(cnt, (index_var, *analysis.rec_free_terms))),
                *analysis.right_elements,
                comparison(">=", index_var, 1),
                arithmetic(next_index_var, index_var, "-", 1),
            ),
        )
    )

    # (5) the query reads P_C at index 0.
    goal_free_terms = tuple(goal.terms[i] for i in analysis.free)
    rewritten.query = Atom(cnt, (Constant(0), *goal_free_terms))
    return rewritten
