"""Atoms and body literals.

An :class:`Atom` is a predicate applied to terms, e.g. ``p(X, a)``.
Rule bodies contain :class:`Literal` objects — an atom with a polarity
(positive or negated) — and :class:`BuiltinAtom` objects for arithmetic
and comparisons (``J1 is J + 1``, ``X < Y``, ``X != Y``).
"""

from __future__ import annotations

from typing import Iterable, Tuple

from .term import Constant, Term, Variable, make_term


class Atom:
    """A relational atom ``predicate(t1, ..., tn)``."""

    __slots__ = ("predicate", "terms")

    def __init__(self, predicate: str, terms: Iterable = ()):
        if not predicate:
            raise ValueError("predicate name must be non-empty")
        self.predicate = predicate
        self.terms: Tuple[Term, ...] = tuple(make_term(t) for t in terms)

    @property
    def arity(self) -> int:
        return len(self.terms)

    def is_ground(self) -> bool:
        return all(term.is_constant for term in self.terms)

    def variables(self):
        """Yield distinct variables of the atom, left to right."""
        seen = set()
        for term in self.terms:
            if term.is_variable and term not in seen:
                seen.add(term)
                yield term

    def substitute(self, theta) -> "Atom":
        """Apply substitution ``theta`` (Variable -> Term) to the atom."""
        return Atom(
            self.predicate,
            tuple(theta.get(t, t) if t.is_variable else t for t in self.terms),
        )

    def __eq__(self, other):
        return (
            isinstance(other, Atom)
            and self.predicate == other.predicate
            and self.terms == other.terms
        )

    def __hash__(self):
        return hash((self.predicate, self.terms))

    def __repr__(self):
        return f"Atom({self.predicate!r}, {self.terms!r})"

    def __str__(self):
        if not self.terms:
            return self.predicate
        args = ", ".join(str(t) for t in self.terms)
        return f"{self.predicate}({args})"


class Literal:
    """A body literal: an atom with a polarity.

    ``Literal(atom)`` is the positive occurrence; ``Literal(atom, True)``
    is the negated occurrence ``not atom`` (evaluated under stratified
    negation as set difference, exactly as the paper implements the
    ``not(MS(_, X1))`` guard of the seminaive magic set computation).
    """

    __slots__ = ("atom", "negated")

    def __init__(self, atom: Atom, negated: bool = False):
        self.atom = atom
        self.negated = negated

    @property
    def predicate(self) -> str:
        return self.atom.predicate

    @property
    def terms(self):
        return self.atom.terms

    def variables(self):
        return self.atom.variables()

    def substitute(self, theta) -> "Literal":
        return Literal(self.atom.substitute(theta), self.negated)

    def __eq__(self, other):
        return (
            isinstance(other, Literal)
            and self.atom == other.atom
            and self.negated == other.negated
        )

    def __hash__(self):
        return hash((self.atom, self.negated))

    def __repr__(self):
        return f"Literal({self.atom!r}, negated={self.negated})"

    def __str__(self):
        return f"not {self.atom}" if self.negated else str(self.atom)


class BuiltinAtom:
    """A builtin (evaluable) atom, e.g. ``X < Y`` or ``J1 is J + 1``.

    ``name`` selects an entry in :mod:`repro.datalog.builtins`; ``args``
    are the terms handed to it.  Builtins never derive facts; they filter
    or extend bindings during body evaluation.
    """

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Iterable = ()):
        self.name = name
        self.args: Tuple[Term, ...] = tuple(make_term(a) for a in args)

    def variables(self):
        seen = set()
        for term in self.args:
            if term.is_variable and term not in seen:
                seen.add(term)
                yield term

    def substitute(self, theta) -> "BuiltinAtom":
        return BuiltinAtom(
            self.name,
            tuple(theta.get(t, t) if t.is_variable else t for t in self.args),
        )

    def __eq__(self, other):
        return (
            isinstance(other, BuiltinAtom)
            and self.name == other.name
            and self.args == other.args
        )

    def __hash__(self):
        return hash((self.name, self.args))

    def __repr__(self):
        return f"BuiltinAtom({self.name!r}, {self.args!r})"

    def __str__(self):
        from .builtins import format_builtin

        return format_builtin(self)


def fact(predicate: str, *values) -> Atom:
    """Build a ground atom from Python values.

    >>> str(fact("edge", "a", "b"))
    'edge(a, b)'
    """
    atom = Atom(predicate, tuple(Constant(v) for v in values))
    return atom


def atom(predicate: str, *terms) -> Atom:
    """Shorthand atom constructor using :func:`make_term` coercion."""
    return Atom(predicate, terms)


def var(name: str) -> Variable:
    """Shorthand for :class:`Variable`."""
    return Variable(name)
