"""Program surgery helpers: one-way matching and θ-subsumption.

The optimizer (:mod:`repro.analysis.rewrite`) transforms programs rather
than merely reporting on them, and the primitives it needs are slightly
different from unification: *one-way* matching, where only the pattern's
variables may bind and the target is treated as fixed.  That asymmetry
is exactly θ-subsumption — rule ``G`` subsumes rule ``S`` when some
substitution θ over ``G``'s variables maps ``G``'s head onto ``S``'s
head and every element of ``G``'s body onto *some* element of ``S``'s
body (polarity- and builtin-preserving).  Every fact ``S`` derives is
then derivable by ``G`` alone, so dropping ``S`` preserves the least
model.

Matching is syntactic and sound in the presence of negation and
builtins because body elements are only ever matched against elements
of the same kind and polarity.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from .atom import Atom, BuiltinAtom, Literal
from .rule import BodyElement, Rule
from .term import Term, Variable

Substitution = Dict[Variable, Term]


def match_terms(
    pattern: Sequence[Term],
    target: Sequence[Term],
    theta: Substitution,
) -> Optional[Substitution]:
    """Extend ``theta`` so the pattern terms map onto the target terms.

    Only pattern variables bind; target variables are treated as fixed
    symbols (a pattern constant never matches a target variable).
    Returns the extended substitution, or ``None`` on mismatch.
    ``theta`` itself is never mutated.
    """
    if len(pattern) != len(target):
        return None
    bound = dict(theta)
    for p, t in zip(pattern, target):
        if p.is_variable:
            existing = bound.get(p)
            if existing is None:
                bound[p] = t
            elif existing != t:
                return None
        elif p != t:
            return None
    return bound


def match_atoms(
    pattern: Atom, target: Atom, theta: Substitution
) -> Optional[Substitution]:
    """One-way matching of two relational atoms."""
    if pattern.predicate != target.predicate:
        return None
    return match_terms(pattern.terms, target.terms, theta)


def match_elements(
    pattern: BodyElement, target: BodyElement, theta: Substitution
) -> Optional[Substitution]:
    """One-way matching of body elements of the same kind and polarity."""
    if isinstance(pattern, Literal):
        if not isinstance(target, Literal) or pattern.negated != target.negated:
            return None
        return match_atoms(pattern.atom, target.atom, theta)
    if isinstance(pattern, BuiltinAtom):
        if not isinstance(target, BuiltinAtom) or pattern.name != target.name:
            return None
        return match_terms(pattern.args, target.args, theta)
    return None


def subsumes(general: Rule, specific: Rule) -> bool:
    """True when ``general`` θ-subsumes ``specific``.

    ``general`` is renamed apart first, so the check is insensitive to
    shared variable names.  The body embedding is found by backtracking
    search; bodies in this codebase are short (rewrite outputs top out
    around six elements), so the worst case is harmless.
    """
    renamed = general.rename_apart("__subg")
    theta = match_atoms(renamed.head, specific.head, {})
    if theta is None:
        return False
    return _embed_body(renamed.body, specific.body, theta)


def _embed_body(
    pattern: Sequence[BodyElement],
    target: Sequence[BodyElement],
    theta: Substitution,
) -> bool:
    if not pattern:
        return True
    first, rest = pattern[0], pattern[1:]
    for candidate in target:
        extended = match_elements(first, candidate, theta)
        if extended is not None and _embed_body(rest, target, extended):
            return True
    return False


def replace_predicate_atoms(rule: Rule, predicate: str, rewrite) -> Rule:
    """Rebuild ``rule`` with every body atom of ``predicate`` rewritten.

    ``rewrite`` maps an :class:`Atom` to its replacement atom; polarity
    is preserved.  The head is left untouched.
    """
    body = []
    for element in rule.body:
        if isinstance(element, Literal) and element.predicate == predicate:
            body.append(Literal(rewrite(element.atom), element.negated))
        else:
            body.append(element)
    return Rule(rule.head, tuple(body))


def project_atom(atom: Atom, keep: Sequence[int]) -> Atom:
    """The atom restricted to the argument positions in ``keep``."""
    return Atom(atom.predicate, tuple(atom.terms[i] for i in keep))
