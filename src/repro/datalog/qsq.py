"""Query-SubQuery (QSQ) evaluation: memoized top-down, set-at-a-time.

Magic sets simulate top-down relevance inside a bottom-up engine; QSQ
is the genuinely top-down formulation the two are famously dual to
(Ullman's [Ul] survey, which the paper cites, treats both).  We
implement the iterative QSQR variant:

* ``input[p^α]`` — the *calls*: tuples of bound arguments with which the
  adorned predicate ``p^α`` has been demanded;
* ``answer[p^α]`` — the solutions derived for those calls;
* the engine repeatedly re-evaluates every adorned rule against every
  pending call, generating subqueries (new input tuples) at IDB body
  literals and reading their current answers, until both tables stop
  growing.

The answer tables coincide with the magic-rewritten program's model —
the test-suite checks exactly that, on top of equivalence with the
naive engine.

Restrictions: negation only on EDB predicates (the classic QSQ
formulation; stratified IDB negation would need stratum-at-a-time
scheduling), and no unbounded builtin recursion (same divergence budget
as the other engines).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from ..errors import EvaluationError, UnsafeQueryError
from .adornment import (
    AdornedProgram,
    adorn_program,
    bound_positions,
)
from .atom import Atom, BuiltinAtom
from .builtins import evaluate_builtin, required_bound_variables
from .database import Database
from .evaluation import DEFAULT_MAX_ITERATIONS
from .program import Program
from .unify import ground_atom_tuple, lookup_pattern, match_tuple

AdornedKey = Tuple[str, str]  # (predicate, adornment)


class QSQEvaluator:
    """Iterative QSQR over an adorned program."""

    def __init__(self, program: Program, database: Database, goal: Atom = None):
        self.adorned: AdornedProgram = adorn_program(program, goal)
        self.goal = self.adorned.goal
        self.database = database
        self.idb = self.adorned.idb
        self.inputs: Dict[AdornedKey, Set[Tuple]] = {}
        self.answers: Dict[AdornedKey, Set[Tuple]] = {}
        self._rules_by_key: Dict[AdornedKey, List] = {}
        for adorned_rule in self.adorned.adorned_rules:
            key = (adorned_rule.rule.head.predicate, adorned_rule.head_adornment)
            self._rules_by_key.setdefault(key, []).append(adorned_rule)

    # --- driving --------------------------------------------------------

    def run(self, max_iterations: int = DEFAULT_MAX_ITERATIONS) -> Set[Tuple]:
        """Answer the goal; returns the projections of its free terms."""
        if self.goal.predicate not in self.idb:
            relation = self.database.relation_or_empty(
                self.goal.predicate, self.goal.arity
            )
            pattern = lookup_pattern(self.goal.terms, {})
            return {
                tuple(
                    tup[i]
                    for i, t in enumerate(self.goal.terms)
                    if t.is_variable
                )
                for tup in relation.lookup(pattern)
            }

        goal_key = (self.goal.predicate, self.adorned.goal_adornment)
        seed = tuple(
            t.value
            for t in self.goal.terms
            if t.is_constant
        )
        self.inputs.setdefault(goal_key, set()).add(seed)

        iterations = 0
        while True:
            iterations += 1
            if iterations > max_iterations:
                raise UnsafeQueryError(
                    f"QSQ fixpoint exceeded {max_iterations} iterations"
                )
            before = self._state_size()
            for key, rules in self._rules_by_key.items():
                calls = self.inputs.get(key)
                if not calls:
                    continue
                for adorned_rule in rules:
                    for call in list(calls):
                        self._apply_rule(adorned_rule, key, call)
            if self._state_size() == before:
                break

        answers = self.answers.get(goal_key, set())
        results = set()
        for tup in answers:
            theta = match_tuple(self.goal.terms, tup, {})
            if theta is not None:
                results.add(
                    tuple(
                        tup[i]
                        for i, t in enumerate(self.goal.terms)
                        if t.is_variable
                    )
                )
        return results

    def _state_size(self) -> int:
        return sum(len(v) for v in self.inputs.values()) + sum(
            len(v) for v in self.answers.values()
        )

    # --- rule application -------------------------------------------------

    def _apply_rule(self, adorned_rule, key: AdornedKey, call: Tuple) -> None:
        rule = adorned_rule.rule
        positions = bound_positions(adorned_rule.head_adornment)
        theta: Dict = {}
        for position, value in zip(positions, call):
            term = rule.head.terms[position]
            if term.is_constant:
                if term.value != value:
                    return
            else:
                bound = theta.get(term)
                if bound is not None and bound.value != value:
                    return
                from .term import Constant

                theta[term] = Constant(value)
        answer_set = self.answers.setdefault(key, set())
        for final_theta in self._solve_body(adorned_rule, 0, theta):
            answer_set.add(ground_atom_tuple(rule.head, final_theta))

    def _solve_body(self, adorned_rule, index: int, theta) -> Iterator[Dict]:
        rule = adorned_rule.rule
        if index == len(rule.body):
            yield theta
            return
        element = rule.body[index]

        if isinstance(element, BuiltinAtom):
            if not required_bound_variables(element) <= set(theta):
                raise EvaluationError(
                    f"builtin {element} not left-to-right evaluable under QSQ"
                )
            for extended in evaluate_builtin(element, theta):
                yield from self._solve_body(adorned_rule, index + 1, extended)
            return

        if element.negated:
            if element.predicate in self.idb:
                raise EvaluationError(
                    "QSQ supports negation on extensional predicates only; "
                    f"found not {element.atom}"
                )
            relation = self.database.relation_or_empty(
                element.predicate, len(element.terms)
            )
            pattern = lookup_pattern(element.terms, theta)
            if any(v is None for v in pattern):
                raise EvaluationError(f"negated literal {element} not ground")
            if not relation.contains(pattern):
                yield from self._solve_body(adorned_rule, index + 1, theta)
            return

        if element.predicate in self.idb and index in adorned_rule.literal_adornments:
            literal_adornment = adorned_rule.literal_adornments[index]
            sub_key = (element.predicate, literal_adornment)
            call = lookup_pattern(element.terms, theta)
            bound_call = tuple(
                call[i] for i in bound_positions(literal_adornment)
            )
            self.inputs.setdefault(sub_key, set()).add(bound_call)
            for tup in list(self.answers.get(sub_key, ())):
                extended = match_tuple(element.terms, tup, theta)
                if extended is not None:
                    yield from self._solve_body(adorned_rule, index + 1, extended)
            return

        relation = self.database.relation_or_empty(
            element.predicate, len(element.terms)
        )
        pattern = lookup_pattern(element.terms, theta)
        for tup in relation.lookup(pattern):
            extended = match_tuple(element.terms, tup, theta)
            if extended is not None:
                yield from self._solve_body(adorned_rule, index + 1, extended)


def qsq_answer_tuples(
    program: Program,
    database: Database,
    goal: Atom = None,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> Set[Tuple]:
    """Answer ``goal`` (default: the program's query) by QSQ."""
    if goal is None:
        goal = program.query
    if goal is None:
        raise EvaluationError("program has no query goal")
    program.check_safety()
    return QSQEvaluator(program, database, goal).run(max_iterations)
