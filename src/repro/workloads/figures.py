"""The paper's worked examples: the graphs of Figures 1 and 2.

The figures themselves are images; the graphs below are reconstructed
from every textual constraint the paper states about them, and the test
suite asserts each of those constraints:

**Figure 1** (query graph, Section 3):

* ``G_L`` is induced by ``a, a1, ..., a5`` and is *regular*;
* ``G_R`` is induced by ``b1, ..., b9``;
* the answer is ``{b3, b5, b7, b8, b9}``; ``b5`` enters via the path
  ``a, a1, b3, b5``; ``b3`` and ``b9`` enter via paths that traverse a
  cycle on the R side (through ``b8``);
* adding ``(a2, a5)`` to ``L`` makes the query acyclic with ``a5``
  multiple; adding ``(a5, a2)`` instead makes it cyclic with exactly
  ``a2, a3, a5`` recurring.

**Figure 2** (magic graph, Sections 4-9), printed values:

* singles ``{a, b, c, d, e, f}``, multiples ``{h, k}``, recurring
  ``{g, i, j, l}``; ``i_x = 2`` with single-method
  ``RC₋ᵢ = {a, b, c, d}``;
* Section 7: ``n_x = 4, m_x = 3, n_ĵ = 1, m_ĵ = 1``;
* Section 8: ``n_s = 6, m_s = 6, n_î = 2, m_î = 3``;
* Section 9: ``n_m = 8, m_m = 9, m_m̂ = 8`` (and ``n_m̂ = 7`` as printed
  — under the strict definition the reconstruction yields ``n_m̂ = 6``,
  because the source ``a`` necessarily reaches the recurring cluster;
  every other printed quantity matches exactly.  See EXPERIMENTS.md.)
"""

from __future__ import annotations

from typing import Dict, Set

from ..core.csl import CSLQuery

# --- Figure 1 -------------------------------------------------------------

FIGURE1_L = frozenset(
    {
        ("a", "a1"),
        ("a", "a2"),
        ("a1", "a3"),
        ("a2", "a3"),
        ("a3", "a5"),
        ("a1", "a4"),
    }
)

FIGURE1_E = frozenset({("a1", "b3"), ("a4", "b1"), ("a5", "b8")})

# R relation pairs (Y, Y1); the query graph draws the arc (Y1, Y).
FIGURE1_R = frozenset(
    {
        ("b5", "b3"),
        ("b2", "b1"),
        ("b7", "b2"),
        ("b8", "b8"),
        ("b9", "b8"),
        ("b3", "b9"),
        ("b4", "b5"),
        ("b6", "b4"),
    }
)

FIGURE1_ANSWER = frozenset({"b3", "b5", "b7", "b8", "b9"})


def figure1_query() -> CSLQuery:
    """The query instance of Figure 1 (regular magic graph)."""
    return CSLQuery(FIGURE1_L, FIGURE1_E, FIGURE1_R, "a")


def figure1_acyclic_query() -> CSLQuery:
    """Figure 1 with ``(a2, a5)`` added: acyclic, ``a5`` multiple."""
    return CSLQuery(FIGURE1_L | {("a2", "a5")}, FIGURE1_E, FIGURE1_R, "a")


def figure1_cyclic_query() -> CSLQuery:
    """Figure 1 with ``(a5, a2)`` added: cyclic, ``a2, a3, a5`` recurring."""
    return CSLQuery(FIGURE1_L | {("a5", "a2")}, FIGURE1_E, FIGURE1_R, "a")


# --- Figure 2 -------------------------------------------------------------

FIGURE2_L = frozenset(
    {
        ("a", "b"),
        ("a", "c"),
        ("a", "d"),
        ("b", "e"),
        ("b", "f"),
        ("b", "h"),
        ("c", "f"),
        ("c", "g"),
        ("e", "h"),
        ("h", "k"),
        ("g", "i"),
        ("i", "j"),
        ("j", "g"),
        ("j", "l"),
    }
)

FIGURE2_SINGLE = frozenset({"a", "b", "c", "d", "e", "f"})
FIGURE2_MULTIPLE = frozenset({"h", "k"})
FIGURE2_RECURRING = frozenset({"g", "i", "j", "l"})

# Reduced sets per strategy, exactly as the paper lists them.
FIGURE2_EXPECTED_RM: Dict[str, Set[str]] = {
    "basic": set("abcdefghijkl"),
    "single": set("efghijkl"),
    "multiple": set("ghijkl"),
    "recurring": set("gijl"),
}

# Printed graph statistics (n_m̂ = 7 as printed; strictly 6 — see module
# docstring).
FIGURE2_PRINTED_STATS = {
    "i_x": 2,
    "n_x": 4,
    "m_x": 3,
    "n_ĵ": 1,
    "m_ĵ": 1,
    "n_s": 6,
    "m_s": 6,
    "n_î": 2,
    "m_î": 3,
    "n_m": 8,
    "m_m": 9,
    "n_m̂": 7,
    "m_m̂": 8,
}


def figure2_query() -> CSLQuery:
    """A full query instance whose magic graph is the Figure 2 graph.

    The paper only draws ``G_L`` for Figure 2; we attach a small answer
    side (one E arc per magic node into a 3-node R chain) so that every
    method can actually run on the instance.
    """
    nodes = {value for pair in FIGURE2_L for value in pair}
    exit_pairs = {(node, "r1") for node in sorted(nodes)}
    right_pairs = {("r2", "r1"), ("r3", "r2"), ("r1", "r3")}
    return CSLQuery(FIGURE2_L, exit_pairs, right_pairs, "a")


def figure2_magic_only() -> CSLQuery:
    """Figure 2 with an empty answer side (for pure Step-1 analysis)."""
    return CSLQuery(FIGURE2_L, set(), set(), "a")
