"""Seeded random CSL instances for property-based testing.

These produce *arbitrary* relations (not the structured layered
workloads of :mod:`generators`): random L/E/R pair sets over small value
domains, so cycles, multi-paths, disconnected junk, self-loops and empty
relations all occur naturally.  Used by the hypothesis test-suite and by
the fuzz benchmarks.
"""

from __future__ import annotations

import random
from typing import List

from ..core.csl import CSLQuery


def random_pairs(
    rng: random.Random, domain_a: List, domain_b: List, count: int
) -> set:
    pairs = set()
    for _ in range(count):
        pairs.add((rng.choice(domain_a), rng.choice(domain_b)))
    return pairs


def random_csl(
    seed: int,
    l_domain: int = 8,
    r_domain: int = 8,
    l_pairs: int = 12,
    e_pairs: int = 5,
    r_pairs: int = 12,
) -> CSLQuery:
    """A random CSL instance; the source is always in the L domain.

    The L relation ranges over ``x0..x{l_domain-1}``, the R relation over
    ``y0..y{r_domain-1}``, and E connects the two domains.  Nothing
    guarantees reachability — the query graph machinery must cope with
    unreachable junk, which is part of the point.
    """
    rng = random.Random(seed)
    l_values = [f"x{i}" for i in range(l_domain)]
    r_values = [f"y{i}" for i in range(r_domain)]
    left = random_pairs(rng, l_values, l_values, l_pairs)
    exit_pairs = random_pairs(rng, l_values, r_values, e_pairs)
    right = random_pairs(rng, r_values, r_values, r_pairs)
    return CSLQuery(left, exit_pairs, right, "x0")


def random_csl_batch(count: int, base_seed: int = 0, **kwargs) -> List[CSLQuery]:
    """``count`` random instances with consecutive seeds."""
    return [random_csl(base_seed + i, **kwargs) for i in range(count)]
