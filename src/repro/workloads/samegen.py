"""Same-generation databases — the paper's motivating example.

"To obtain the well-known same-generation example, we can assume that
both L and R correspond to a relation Parent ... and every person is of
the same generation as himself" (Section 1).  Here ``parent`` holds
``(child, parent)`` pairs, so asking same-generation of a person walks
*up* the ancestry (``L``) and back *down* (``R``).

Section 3 motivates the magic counting methods with "accidentally
cyclic" family trees: a database that is logically acyclic may contain
physical cycles because acyclicity is too expensive to check on update.
:func:`accidentally_cyclic_family` builds exactly that situation.
"""

from __future__ import annotations

import random
from typing import Set, Tuple

from ..core.csl import CSLQuery


def balanced_tree_parent(depth: int, fanout: int = 2) -> Set[Tuple[str, str]]:
    """(child, parent) pairs of a balanced ancestry tree.

    ``p0`` is the unique root (the oldest ancestor); generation ``g``
    holds ``fanout**g`` people.  Every leaf is ``depth`` generations
    below the root.
    """
    pairs: Set[Tuple[str, str]] = set()
    generation = ["p0"]
    counter = 1
    for _ in range(depth):
        next_generation = []
        for parent in generation:
            for _ in range(fanout):
                child = f"p{counter}"
                counter += 1
                pairs.add((child, parent))
                next_generation.append(child)
        generation = next_generation
    return pairs


def balanced_same_generation(depth: int, fanout: int = 2) -> CSLQuery:
    """Same-generation of the lexicographically first leaf of a
    balanced tree (a regular magic graph: the ancestry is a chain)."""
    pairs = balanced_tree_parent(depth, fanout)
    children = {child for child, _ in pairs}
    parents = {parent for _, parent in pairs}
    leaves = sorted(children - parents)
    return CSLQuery.same_generation(pairs, source=leaves[0])


def random_forest_parent(
    people: int, roots: int = 1, seed: int = 0, extra_parents: int = 0
) -> Set[Tuple[str, str]]:
    """A random (acyclic) ancestry: person ``i`` gets a parent among the
    earlier people.  ``extra_parents`` adds second parents, creating
    multiple same-length or different-length ancestor paths (non-regular
    but still acyclic magic graphs)."""
    rng = random.Random(seed)
    pairs: Set[Tuple[str, str]] = set()
    for i in range(roots, people):
        parent = rng.randrange(0, i)
        pairs.add((f"p{i}", f"p{parent}"))
    for _ in range(extra_parents):
        i = rng.randrange(roots + 1, people)
        parent = rng.randrange(0, i)
        pairs.add((f"p{i}", f"p{parent}"))
    return pairs


def accidentally_cyclic_family(
    people: int, seed: int = 0, cycle_edges: int = 1
) -> CSLQuery:
    """A family tree with ``cycle_edges`` corrupt tuples that make an
    ancestor a descendant of their own descendant — the "accidental
    cycles that throw the counting method astray" of Section 3."""
    rng = random.Random(seed)
    pairs = random_forest_parent(people, seed=seed)
    children = sorted({child for child, _ in pairs})
    for _ in range(cycle_edges):
        descendant = rng.choice(children)
        # Walk up a few generations, then declare the ancestor a child
        # of the descendant.
        ancestor = descendant
        for _ in range(rng.randrange(1, 4)):
            parents = [p for c, p in pairs if c == ancestor]
            if not parents:
                break
            ancestor = rng.choice(parents)
        if ancestor != descendant:
            pairs.add((ancestor, descendant))
    source = children[-1]
    return CSLQuery.same_generation(pairs, source=source)
