"""Dense families that make the Θ-bounds *tight*.

The layered workloads of :mod:`generators` validate the upper-bound
shape; these complete-layered families exercise the lower bound: every
join the Θ-expressions charge actually happens, so measured/predicted
ratios should stay roughly constant as the family grows (the definition
of Θ rather than O).

``layered_complete``: the L side is ``levels`` layers of ``width``
nodes with *all* arcs between consecutive layers (every node single —
regular — but with maximal fan-in/fan-out), the R side likewise, and E
connects every L node to every R entry node.  ``with_cycle=True`` adds
a back arc to flip the class to cyclic (and the counting method to
unsafe) without changing the density.
"""

from __future__ import annotations

from ..core.csl import CSLQuery


def layered_complete(
    levels: int,
    width: int,
    r_levels: int = None,
    r_width: int = None,
    with_cycle: bool = False,
) -> CSLQuery:
    """A maximally dense regular (or cyclic) CSL instance."""
    if r_levels is None:
        r_levels = levels + 1
    if r_width is None:
        r_width = width

    layers = [["a"]] + [
        [f"L{i}_{j}" for j in range(width)] for i in range(1, levels + 1)
    ]
    left = {
        (b, c)
        for lower, upper in zip(layers, layers[1:])
        for b in lower
        for c in upper
    }
    if with_cycle:
        left.add((layers[-1][0], layers[1][0]))

    r_layers = [
        [f"R{i}_{j}" for j in range(r_width)] for i in range(r_levels + 1)
    ]
    right = {
        (c, b)  # pair (Y, Y1): graph arc b -> c walks down one level
        for lower, upper in zip(r_layers, r_layers[1:])
        for b in lower
        for c in upper
    }
    l_nodes = [node for layer in layers for node in layer]
    exit_pairs = {(node, r_layers[0][0]) for node in l_nodes}
    return CSLQuery(left, exit_pairs, right, "a")
