"""Synthetic workloads: the paper's figures, layered cost workloads,
same-generation databases, and random instances for property testing."""

from .adversarial import (
    chorded_cycle,
    deep_single_branch_with_early_multiple,
    diamond_ladder_into_cycle,
    overlapping_descent_chain,
)
from .figures import (
    FIGURE1_ANSWER,
    FIGURE2_EXPECTED_RM,
    FIGURE2_MULTIPLE,
    FIGURE2_PRINTED_STATS,
    FIGURE2_RECURRING,
    FIGURE2_SINGLE,
    figure1_acyclic_query,
    figure1_cyclic_query,
    figure1_query,
    figure2_magic_only,
    figure2_query,
)
from .generators import (
    WorkloadParams,
    acyclic_workload,
    cyclic_workload,
    generate,
    grid_workload,
    regular_workload,
)
from .random_graphs import random_csl, random_csl_batch
from .tight import layered_complete
from .samegen import (
    accidentally_cyclic_family,
    balanced_same_generation,
    balanced_tree_parent,
    random_forest_parent,
)

__all__ = [
    "FIGURE1_ANSWER",
    "FIGURE2_EXPECTED_RM",
    "FIGURE2_MULTIPLE",
    "FIGURE2_PRINTED_STATS",
    "FIGURE2_RECURRING",
    "FIGURE2_SINGLE",
    "WorkloadParams",
    "accidentally_cyclic_family",
    "acyclic_workload",
    "balanced_same_generation",
    "balanced_tree_parent",
    "chorded_cycle",
    "cyclic_workload",
    "deep_single_branch_with_early_multiple",
    "diamond_ladder_into_cycle",
    "overlapping_descent_chain",
    "figure1_acyclic_query",
    "figure1_cyclic_query",
    "figure1_query",
    "figure2_magic_only",
    "figure2_query",
    "generate",
    "grid_workload",
    "layered_complete",
    "random_csl",
    "random_csl_batch",
    "random_forest_parent",
    "regular_workload",
]
