"""Adversarial instances: each method's structural worst/best cases.

These are the hand-crafted families the benchmark suite uses to isolate
one mechanism at a time:

* :func:`chorded_cycle` — everything recurring: the naive recurring
  Step 1 pays its full Θ(n_L × m_L) sweep, the SCC variant stays linear;
* :func:`diamond_ladder_into_cycle` — every rung multiple, one small
  cycle at the top: the recurring strategy's RC (all indices of all
  multiple nodes) pays off against the multiple strategy's RM;
* :func:`deep_single_branch_with_early_multiple` — the Figure-2 smear:
  an early multiple node forces the single method's i_x to 1, dumping a
  long perfectly-countable branch into the magic part; the multiple
  method keeps counting it;
* :func:`overlapping_descent_chain` — per-level descents that overlap
  on a tiny cyclic R side: the counting method's shared downward
  cascade collapses them, the [HN] iterative baseline re-walks them.
"""

from __future__ import annotations

from ..core.csl import CSLQuery


def chorded_cycle(size: int) -> CSLQuery:
    """A directed ``size``-cycle with +2 chords, reached from ``a``."""
    left = {(f"n{i}", f"n{(i + 1) % size}") for i in range(size)}
    left |= {(f"n{i}", f"n{(i + 2) % size}") for i in range(size)}
    left.add(("a", "n0"))
    return CSLQuery(left, set(), set(), "a")


def diamond_ladder_into_cycle(rungs: int, r_depth: int = 25) -> CSLQuery:
    """A ladder of skip-arc diamonds (every rung multiple) ending in a
    2-cycle, with exits from every rung into a deep R chain."""
    left = set()
    previous = "a"
    for i in range(rungs):
        left |= {
            (previous, f"u{i}"),
            (previous, f"v{i}"),
            (f"u{i}", f"w{i}"),
            (f"v{i}", f"w{i}"),
            (previous, f"w{i}"),  # the skip: w_i becomes multiple
        }
        previous = f"w{i}"
    left |= {(previous, "c1"), ("c1", "c2"), ("c2", "c1")}
    exit_pairs = {(f"w{i}", "r0") for i in range(rungs)}
    right = {(f"r{j+1}", f"r{j}") for j in range(r_depth)}
    return CSLQuery(left, exit_pairs, right, "a")


def deep_single_branch_with_early_multiple(
    branch_length: int, r_depth: int = 25
) -> CSLQuery:
    """One early multiple node beside a long single branch."""
    left = {("a", "bad"), ("a", "bad2"), ("bad2", "bad")}
    previous = "a"
    for i in range(branch_length):
        left.add((previous, f"s{i}"))
        previous = f"s{i}"
    exit_pairs = {(f"s{i}", "r0") for i in range(branch_length)}
    exit_pairs.add(("bad", "r0"))
    right = {(f"r{j+1}", f"r{j}") for j in range(r_depth)}
    return CSLQuery(left, exit_pairs, right, "a")


def overlapping_descent_chain(depth: int) -> CSLQuery:
    """A chain magic graph whose exits all enter a 2-cycle R side."""
    left = {("a", "n0")} | {(f"n{i}", f"n{i+1}") for i in range(depth - 1)}
    exit_pairs = {(f"n{i}", "r0") for i in range(depth)}
    right = {("r1", "r0"), ("r0", "r1")}
    return CSLQuery(left, exit_pairs, right, "a")
