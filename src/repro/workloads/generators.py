"""Parametric synthetic workloads for the cost experiments.

The paper's evaluation is driven by three magic-graph regimes —
**regular**, **non-regular acyclic**, **cyclic** — with the answer side
(``G_R``) of a size comparable to the magic side (the "on the average
``m_R`` is of the same order as ``m_L``" assumption behind the dotted
arcs of Figure 3).  :func:`generate` builds layered instances of all
three regimes with controllable sizes:

* the L side is a layered graph (level ``i`` → level ``i+1`` arcs only),
  which makes every node single — *regular* by construction;
* the *acyclic* regime adds level-skipping arcs from a chosen level
  upwards, making every node above the skip multiple;
* the *cyclic* regime additionally adds a back arc closing a cycle in
  the upper region, making the nodes above it recurring;
* keeping the lower ``nonregular_from`` levels untouched reproduces the
  Figure 2 situation the single/multiple/recurring strategies exploit:
  a regular region near the source, trouble only far away.

The R side is an independent layered graph entered through ``E`` arcs;
its depth exceeds the L depth so answers keep cascading all the way
down to index 0.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..core.csl import CSLQuery

KINDS = ("regular", "acyclic", "cyclic")


@dataclass
class WorkloadParams:
    """Knobs for :func:`generate`.

    ``l_levels``/``l_width``/``l_fanout`` shape the magic graph;
    ``r_levels``/``r_width``/``r_fanout`` shape the answer graph;
    ``kind`` selects the regime; ``nonregular_from`` is the first level
    that receives skip/back arcs (default: half depth); ``skip_arcs``
    controls how much multiplicity is injected; ``e_per_node`` is the
    expected number of E arcs leaving each magic node.
    """

    l_levels: int = 6
    l_width: int = 4
    l_fanout: int = 2
    r_levels: Optional[int] = None
    r_width: int = 4
    r_fanout: int = 2
    kind: str = "regular"
    nonregular_from: Optional[int] = None
    skip_arcs: int = 2
    e_per_node: float = 1.0
    seed: int = 0

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {self.kind!r}")
        if self.r_levels is None:
            # Deep enough that every counting index can cascade to 0.
            self.r_levels = self.l_levels + 1
        if self.nonregular_from is None:
            self.nonregular_from = max(1, self.l_levels // 2)


def _layered_l_side(params: WorkloadParams, rng: random.Random):
    """Levels of L-node names and the L relation pairs."""
    levels: List[List[str]] = [["a"]]
    for level in range(1, params.l_levels + 1):
        levels.append([f"L{level}_{j}" for j in range(params.l_width)])
    left: Set[Tuple[str, str]] = set()
    for level in range(params.l_levels):
        current, following = levels[level], levels[level + 1]
        for node in current:
            targets = rng.sample(
                following, k=min(params.l_fanout, len(following))
            )
            for target in targets:
                left.add((node, target))
        # Every next-level node needs an in-arc or it falls out of the
        # query graph and the level widths drift.
        covered = {target for (source, target) in left if target in following}
        for orphan in following:
            if orphan not in covered:
                left.add((rng.choice(current), orphan))
    return levels, left


def _inject_multiplicity(
    params: WorkloadParams, rng: random.Random, levels, left: Set[Tuple[str, str]]
) -> None:
    """Skip arcs (level i -> i+2) from ``nonregular_from`` up: the
    targets acquire a second, shorter distance — multiple nodes."""
    start = params.nonregular_from
    added = 0
    attempts = 0
    while added < params.skip_arcs and attempts < 50 * params.skip_arcs:
        attempts += 1
        level = rng.randrange(start, max(start + 1, params.l_levels - 1))
        if level + 2 > params.l_levels:
            continue
        source = rng.choice(levels[level])
        target = rng.choice(levels[level + 2])
        if (source, target) not in left:
            left.add((source, target))
            added += 1


def _inject_cycle(
    params: WorkloadParams, rng: random.Random, levels, left: Set[Tuple[str, str]]
) -> None:
    """A back arc inside the upper region closes a directed cycle.

    The arc must run from a node *reachable from* the chosen low node
    back to that node, otherwise no cycle forms; we BFS forward from the
    target to find a genuine descendant.
    """
    start = params.nonregular_from
    if start >= params.l_levels:
        start = max(1, params.l_levels - 1)
    low = min(start + 1, params.l_levels)
    target = rng.choice(levels[low])

    successors: Dict[str, List[str]] = {}
    for b, c in left:
        successors.setdefault(b, []).append(c)
    reachable: List[str] = []
    seen = {target}
    frontier = [target]
    while frontier:
        node = frontier.pop()
        for successor in successors.get(node, ()):
            if successor not in seen:
                seen.add(successor)
                reachable.append(successor)
                frontier.append(successor)
    source = rng.choice(reachable) if reachable else target
    left.add((source, target))


def _answer_side(params: WorkloadParams, rng: random.Random, l_nodes: List[str]):
    """E arcs into a fresh layered R graph; returns (exit, right)."""
    r_levels: List[List[str]] = [
        [f"R{level}_{j}" for j in range(params.r_width)]
        for level in range(params.r_levels + 1)
    ]
    right: Set[Tuple[str, str]] = set()
    for level in range(params.r_levels):
        current, following = r_levels[level], r_levels[level + 1]
        for node in current:
            targets = rng.sample(
                following, k=min(params.r_fanout, len(following))
            )
            for target in targets:
                # Graph arc node -> target means R relation pair
                # (target, node): P_C counts down through it.
                right.add((target, node))
    exit_pairs: Set[Tuple[str, str]] = set()
    entry = r_levels[0]
    for node in l_nodes:
        count = int(params.e_per_node)
        if rng.random() < params.e_per_node - count:
            count += 1
        for _ in range(count):
            exit_pairs.add((node, rng.choice(entry)))
    return exit_pairs, right


def generate(params: WorkloadParams) -> CSLQuery:
    """Build a CSL query instance according to ``params``."""
    rng = random.Random(params.seed)
    levels, left = _layered_l_side(params, rng)
    if params.kind in ("acyclic", "cyclic"):
        _inject_multiplicity(params, rng, levels, left)
    if params.kind == "cyclic":
        _inject_cycle(params, rng, levels, left)
    l_nodes = [node for level in levels for node in level]
    exit_pairs, right = _answer_side(params, rng, l_nodes)
    return CSLQuery(left, exit_pairs, right, "a")


def regular_workload(scale: int = 1, seed: int = 0, **overrides) -> CSLQuery:
    """A regular instance whose size grows linearly with ``scale``."""
    params = WorkloadParams(
        l_levels=4 + 2 * scale,
        l_width=2 + scale,
        kind="regular",
        seed=seed,
        **overrides,
    )
    return generate(params)


def acyclic_workload(scale: int = 1, seed: int = 0, **overrides) -> CSLQuery:
    """A non-regular acyclic instance (multiplicity in the upper half)."""
    params = WorkloadParams(
        l_levels=4 + 2 * scale,
        l_width=2 + scale,
        kind="acyclic",
        skip_arcs=1 + scale,
        seed=seed,
        **overrides,
    )
    return generate(params)


def grid_workload(side: int, r_depth: Optional[int] = None) -> CSLQuery:
    """A ``side × side`` grid magic graph (arcs right and down).

    Every node (i, j) has exactly one distance ``i + j`` but up to
    ``C(i+j, i)`` distinct shortest paths — a *regular* graph with
    massive same-length path sharing, stressing the set-semantics
    dedup of every Step-1 fixpoint (a per-path implementation would
    blow up exponentially; the fixpoints must stay Θ(m_L)).
    """
    left = set()
    for i in range(side):
        for j in range(side):
            if i + 1 < side:
                left.add((f"g{i}_{j}", f"g{i+1}_{j}"))
            if j + 1 < side:
                left.add((f"g{i}_{j}", f"g{i}_{j+1}"))
    if r_depth is None:
        r_depth = 2 * side
    corner = f"g{side-1}_{side-1}"
    exit_pairs = {(corner, "r0"), (f"g0_{side-1}", "r0")}
    right = {(f"r{j+1}", f"r{j}") for j in range(r_depth)}
    left = {("a", "g0_0")} | left
    return CSLQuery(left, exit_pairs, right, "a")


def cyclic_workload(scale: int = 1, seed: int = 0, **overrides) -> CSLQuery:
    """A cyclic instance (a cycle in the upper half)."""
    params = WorkloadParams(
        l_levels=4 + 2 * scale,
        l_width=2 + scale,
        kind="cyclic",
        skip_arcs=1 + scale,
        seed=seed,
        **overrides,
    )
    return generate(params)
