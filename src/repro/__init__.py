"""repro — a reproduction of "Magic Counting Methods" (SIGMOD 1987).

The package implements the full stack the paper builds on:

* :mod:`repro.datalog` — a bottom-up Datalog engine (parser, safety,
  stratified negation, naive/semi-naive evaluation, magic-set and
  counting rewritings) over cost-instrumented relations;
* :mod:`repro.core` — the paper's contribution: canonical strongly
  linear queries, query graphs, node classification, the counting and
  magic set methods, and the eight magic counting methods
  (basic/single/multiple/recurring × independent/integrated);
* :mod:`repro.service` — the serving layer: a batch solver service
  with compiled-plan caching (compile a program once, answer many
  bound goals on the shared plan);
* :mod:`repro.workloads` — synthetic query-instance generators,
  including the exact example graphs of Figures 1 and 2;
* :mod:`repro.analysis` — the graph statistics and Θ-cost formulas of
  the paper's Tables 1–5.

Quickstart::

    from repro import CSLQuery, solve, Strategy, Mode

    query = CSLQuery.same_generation(parent_pairs, source="ann")
    result = solve(query, strategy=Strategy.MULTIPLE, mode=Mode.INTEGRATED)
    print(result.answers, result.cost.retrievals)
"""

from .core import (
    AnswerResult,
    CSLQuery,
    MagicGraphClass,
    Mode,
    QueryGraph,
    ReducedSets,
    Strategy,
    classify_nodes,
    compute_statistics,
    counting_method,
    extended_counting_method,
    fact2_answer,
    magic_counting,
    magic_set_method,
    naive_answer,
    solve,
    solve_program,
)
from .datalog import (
    Database,
    Program,
    counting_rewrite,
    magic_rewrite,
    parse_program,
)
from .service import BatchResult, SolverService

__version__ = "1.0.0"

__all__ = [
    "AnswerResult",
    "BatchResult",
    "CSLQuery",
    "Database",
    "SolverService",
    "MagicGraphClass",
    "Mode",
    "Program",
    "QueryGraph",
    "ReducedSets",
    "Strategy",
    "classify_nodes",
    "compute_statistics",
    "counting_method",
    "counting_rewrite",
    "extended_counting_method",
    "fact2_answer",
    "magic_counting",
    "magic_rewrite",
    "magic_set_method",
    "naive_answer",
    "parse_program",
    "solve",
    "solve_program",
    "__version__",
]
