"""The wire protocol: newline-delimited JSON frames over TCP.

One request per line, one response per line, matched by ``id``::

    -> {"id": 1, "op": "solve", "params": {"source": "ann"}}
    <- {"id": 1, "ok": true, "result": {"source": "ann", "answers": [...]}}

    -> {"id": 2, "op": "bogus"}
    <- {"id": 2, "ok": false,
        "error": {"code": "bad_request", "message": "unknown op 'bogus'"}}

Responses may arrive out of request order — the server handles every
frame in its own task so that concurrent ``solve`` requests pipelined
on one connection still coalesce into shared batches.  Clients must
route responses by ``id`` (both shipped clients do).

Ops: ``ping``, ``solve``, ``solve_batch``, ``add_fact``, ``add_facts``,
``remove_fact``, ``remove_facts``, ``stats``, plus the cluster control
ops ``epoch``, ``apply_delta`` and ``load_snapshot`` that only the
:mod:`repro.cluster` servers implement.  The mutation ops answer
with the new ``db_version`` plus how many cached plans were maintained
in place vs invalidated.  Values (sources, answers, fact fields) are
JSON scalars;
tuples are encoded as JSON arrays and decoded back to tuples, so
integer and string constants round-trip exactly.  See
``docs/serving.md`` for the full specification.

Structured error codes are the serving layer's control surface:
``overloaded`` (admission control rejected the request — back off),
``deadline_exceeded`` (the request's deadline passed before an answer
was produced), ``shutting_down`` (graceful shutdown in progress),
``bad_request`` (malformed frame, unknown op, bad program text),
``unsafe_query`` (counting statically certified divergent),
``worker_failed`` (a cluster worker died mid-request after the front's
internal retries — idempotent solves may be retried), ``read_only``
(a mutation reached a worker replica instead of the cluster front) and
``internal``.  Each maps to an exception class here so client code can
``except OverloadedError`` instead of string-matching.
"""

from __future__ import annotations

import json
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..errors import ReproError

#: Hard cap on one frame's size; oversized frames fail the connection.
MAX_FRAME_BYTES = 1 << 20

#: Every operation the server dispatches.
OPS = (
    "ping",
    "solve",
    "solve_batch",
    "add_fact",
    "add_facts",
    "remove_fact",
    "remove_facts",
    "stats",
    # Cluster control plane (handled by repro.cluster servers; a plain
    # SolverServer answers them with a structured bad_request).
    "epoch",
    "apply_delta",
    "load_snapshot",
)

#: The ops a worker replica accepts only from its own cluster front
#: (authenticated by the spawn-time token).
CLUSTER_OPS = ("epoch", "apply_delta", "load_snapshot")

#: The idempotent ops clients may safely retry on worker failover.
IDEMPOTENT_OPS = ("ping", "solve", "solve_batch", "stats", "epoch")

ERROR_BAD_REQUEST = "bad_request"
ERROR_OVERLOADED = "overloaded"
ERROR_DEADLINE = "deadline_exceeded"
ERROR_SHUTTING_DOWN = "shutting_down"
ERROR_UNSAFE = "unsafe_query"
ERROR_INTERNAL = "internal"
ERROR_WORKER_FAILED = "worker_failed"
ERROR_READ_ONLY = "read_only"


class ServerError(ReproError):
    """A structured protocol-level error with a stable ``code``."""

    code = ERROR_INTERNAL

    def __init__(self, message: str = ""):
        super().__init__(message or self.code)


class ProtocolError(ServerError):
    """Malformed frame, unknown op, or invalid parameters."""

    code = ERROR_BAD_REQUEST


class OverloadedError(ServerError):
    """Admission control rejected the request; the queue is full."""

    code = ERROR_OVERLOADED


class DeadlineExceededError(ServerError):
    """The request's deadline passed before an answer was produced."""

    code = ERROR_DEADLINE


class ShuttingDownError(ServerError):
    """The server is draining and no longer admits new requests."""

    code = ERROR_SHUTTING_DOWN


class WorkerFailedError(ServerError):
    """A cluster worker died while serving the request.

    Idempotent requests (``solve``/``solve_batch``) are safe to retry:
    the cluster front reshards and retries internally first, so a
    client only sees this code when the retry budget is exhausted —
    back off and retry once, the failover usually completes within a
    health-check interval.
    """

    code = ERROR_WORKER_FAILED


class ReadOnlyError(ServerError):
    """A mutation was sent to a read-only worker replica.

    Worker snapshots are mutated only through the cluster front's
    single-writer path (``apply_delta``/``load_snapshot``); clients
    must route ``add_fact``/``remove_fact`` traffic to the front.
    """

    code = ERROR_READ_ONLY


_ERROR_CLASSES = {
    cls.code: cls
    for cls in (
        ProtocolError,
        OverloadedError,
        DeadlineExceededError,
        ShuttingDownError,
        WorkerFailedError,
        ReadOnlyError,
        ServerError,
    )
}


def error_from_payload(payload: Dict[str, object]) -> ServerError:
    """Rehydrate a response's ``error`` object into the matching class."""
    code = str(payload.get("code", ERROR_INTERNAL))
    message = str(payload.get("message", ""))
    cls = _ERROR_CLASSES.get(code)
    if cls is None:
        error = ServerError(message)
        error.code = code
        return error
    return cls(message)


def error_for_exception(exc: BaseException) -> Tuple[str, str]:
    """Map a server-side exception to a ``(code, message)`` pair."""
    from ..errors import UnsafeQueryError

    if isinstance(exc, ServerError):
        return exc.code, str(exc)
    if isinstance(exc, UnsafeQueryError):
        return ERROR_UNSAFE, str(exc)
    if isinstance(exc, (ReproError, KeyError, TypeError, ValueError)):
        return ERROR_BAD_REQUEST, str(exc) or type(exc).__name__
    return ERROR_INTERNAL, f"{type(exc).__name__}: {exc}"


# --- framing ----------------------------------------------------------------


def encode_frame(payload: Dict[str, object]) -> bytes:
    """One JSON object, compact, newline-terminated."""
    return json.dumps(payload, separators=(",", ":"), default=str).encode(
        "utf-8"
    ) + b"\n"


def decode_request(line: bytes) -> Dict[str, object]:
    """Parse and validate one request frame.

    Raises :class:`ProtocolError` on anything that is not a JSON object
    with a known string ``op`` and (when present) a dict ``params``.
    """
    try:
        payload = json.loads(line)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(payload).__name__}"
        )
    op = payload.get("op")
    if not isinstance(op, str):
        raise ProtocolError("frame is missing a string 'op'")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {', '.join(OPS)}"
        )
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("'params' must be a JSON object")
    return payload


def ok_response(request_id, result) -> Dict[str, object]:
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id, code: str, message: str) -> Dict[str, object]:
    return {
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }


# --- value encoding ---------------------------------------------------------
#
# Constants in the engine are strings, ints, or tuples of those
# (multi-position bound goals).  JSON has no tuple, so tuples travel as
# arrays and arrays decode back to tuples — lossless for every constant
# the Datalog layer produces.


def encode_value(value):
    if isinstance(value, tuple):
        return [encode_value(item) for item in value]
    return value


def decode_value(value):
    if isinstance(value, list):
        return tuple(decode_value(item) for item in value)
    return value


def encode_answers(answers: FrozenSet) -> List:
    """A deterministic (sorted-by-repr) list of encoded answer values."""
    return [encode_value(value) for value in sorted(answers, key=repr)]


def decode_answers(values: Iterable) -> FrozenSet:
    return frozenset(decode_value(value) for value in values)


def encode_answer_map(answers: Dict[object, FrozenSet]) -> List[List]:
    """``{source: answers}`` as ``[[source, [answer, ...]], ...]`` —
    JSON object keys must be strings, so the map travels as pairs to
    keep non-string sources (ints, tuples) intact."""
    return [
        [encode_value(source), encode_answers(values)]
        for source, values in sorted(answers.items(), key=lambda kv: repr(kv[0]))
    ]


def decode_answer_map(pairs: Iterable) -> Dict[object, FrozenSet]:
    return {
        decode_value(source): decode_answers(values)
        for source, values in pairs
    }
