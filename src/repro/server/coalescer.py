"""Request coalescing: micro-batch concurrent solves into shared batches.

The paper's economics one level up: :class:`~repro.service.SolverService`
already amortizes the reachability sweep and the ``P_M`` fixpoint across
the sources of one batch, so *concurrent network clients* asking for
sources of the same query shape should ride in one batch too.  The
coalescer holds each arriving ``solve`` for at most one **window**
(default 5 ms); every request for the same ``(program, method)`` group
that lands inside the window joins the batch, and one
``solve_batch`` call answers them all — N clients pay one shared sweep
instead of N.

Three serving guarantees live here, not in the transport:

* **admission control** — at most ``max_pending`` requests may be
  queued or executing; request N+1 is rejected immediately with
  :class:`OverloadedError` (a structured ``overloaded`` response on the
  wire), never queued unboundedly;
* **deadlines** — a request with a deadline that expires while waiting
  is dropped from its batch (its waiter gets
  :class:`DeadlineExceededError`); a source wanted only by expired
  requests is not executed at all.  Cancellation is cooperative at
  batch boundaries: a batch already running is not interrupted;
* **draining** — :meth:`drain` flushes every open window immediately,
  awaits the in-flight batches (window flushes AND explicit
  :meth:`submit_batch` runs — both are tracked), and rejects new
  arrivals with :class:`ShuttingDownError`, which is exactly the
  graceful-shutdown sequence the server needs.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Dict, List, Optional, Set, Tuple

from .protocol import (
    DeadlineExceededError,
    OverloadedError,
    ShuttingDownError,
)

#: ``execute(key, sources) -> {source: frozenset}`` — the coalescer is
#: transport- and engine-agnostic; the server supplies the callable.
ExecuteFn = Callable[[object, List], Awaitable[Dict[object, frozenset]]]


class _Group:
    """One open coalescing window: entries waiting for a flush."""

    __slots__ = ("key", "entries", "timer")

    def __init__(self, key):
        self.key = key
        self.entries: List[Tuple[object, asyncio.Future]] = []
        self.timer: Optional[asyncio.TimerHandle] = None


class RequestCoalescer:
    """Micro-batches concurrent requests per ``(program, method)`` group."""

    def __init__(
        self,
        execute: ExecuteFn,
        window: float = 0.005,
        max_batch: int = 64,
        max_pending: int = 256,
    ):
        if window < 0:
            raise ValueError("coalescing window must be >= 0")
        if max_batch < 1 or max_pending < 1:
            raise ValueError("max_batch and max_pending must be >= 1")
        self._execute = execute
        self.window = window
        self.max_batch = max_batch
        self.max_pending = max_pending
        self._groups: Dict[object, _Group] = {}  # guarded-by: @loop
        self._flushes: Set[asyncio.Task] = set()  # guarded-by: @loop
        self._draining = False  # guarded-by: @loop
        self.pending = 0  # guarded-by: @loop
        # Lifetime counters, surfaced on /metrics.  Everything above and
        # below is event-loop-confined: the coalescer is called only
        # from coroutines and loop callbacks, never from worker threads.
        self.requests = 0  # guarded-by: @loop
        self.batches = 0  # guarded-by: @loop
        self.coalesced = 0  # guarded-by: @loop
        self.largest_batch = 0  # guarded-by: @loop
        self.overloaded = 0  # guarded-by: @loop
        self.expired = 0  # guarded-by: @loop

    # --- admission ------------------------------------------------------

    def _admit(self, slots: int) -> None:
        if self._draining:
            raise ShuttingDownError("server is draining; request rejected")
        if self.pending + slots > self.max_pending:
            self.overloaded += 1
            raise OverloadedError(
                f"pending queue full ({self.pending}/{self.max_pending}); "
                "retry with backoff"
            )

    # --- the coalesced path --------------------------------------------

    async def submit(self, key, source, deadline: Optional[float] = None):
        """Queue one source under ``key``; returns its answer set.

        ``deadline`` is seconds from now (None = no deadline).  The
        request waits at most one window before its batch runs; it may
        ride an earlier flush when the group hits ``max_batch``.
        """
        self._admit(1)
        if deadline is not None and deadline <= 0:
            self.expired += 1
            raise DeadlineExceededError("deadline expired before admission")
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        group = self._groups.get(key)
        if group is None:
            group = _Group(key)
            self._groups[key] = group
            group.timer = loop.call_later(self.window, self._flush, key)
        group.entries.append((source, future))
        self.requests += 1
        self.pending += 1
        if len(group.entries) >= self.max_batch:
            self._flush(key)
        try:
            if deadline is None:
                return await future
            try:
                return await asyncio.wait_for(future, deadline)
            except asyncio.TimeoutError:
                # wait_for cancelled the future, so the flush skips this
                # entry — cooperative cancellation at the batch boundary.
                self.expired += 1
                raise DeadlineExceededError(
                    f"deadline of {deadline * 1000:.0f}ms exceeded"
                ) from None
        finally:
            self.pending -= 1

    # --- the explicit-batch path ---------------------------------------

    async def submit_batch(
        self, key, sources: List, deadline: Optional[float] = None
    ) -> Dict[object, frozenset]:
        """Run an explicit multi-source batch, bypassing the window but
        sharing admission control and the execution path.

        Each source takes one admission slot, so a huge explicit batch
        cannot starve coalesced traffic past ``max_pending``.
        """
        slots = max(1, len(sources))
        self._admit(slots)
        if deadline is not None and deadline <= 0:
            self.expired += 1
            raise DeadlineExceededError("deadline expired before admission")
        self.requests += slots
        self.pending += slots
        self.batches += 1
        self.largest_batch = max(self.largest_batch, len(sources))
        try:
            task = asyncio.ensure_future(self._execute(key, list(sources)))
            # Tracked like a window flush: drain() must hold shutdown
            # open until this batch answers too, or a SIGTERM with a
            # short grace would drop an accepted explicit batch that is
            # mid-fixpoint on the worker pool.
            self._flushes.add(task)
            task.add_done_callback(self._flushes.discard)
            if deadline is None:
                return await task
            try:
                return await asyncio.wait_for(asyncio.shield(task), deadline)
            except asyncio.TimeoutError:
                # The batch keeps running on its worker thread (it
                # cannot be interrupted mid-fixpoint); consume its
                # eventual result so nothing warns about it.
                task.add_done_callback(_swallow_result)
                self.expired += 1
                raise DeadlineExceededError(
                    f"deadline of {deadline * 1000:.0f}ms exceeded"
                ) from None
        finally:
            self.pending -= slots

    # --- flushing -------------------------------------------------------

    def _flush(self, key) -> None:
        """Close the window for ``key`` and start its batch."""
        group = self._groups.pop(key, None)
        if group is None:
            return
        if group.timer is not None:
            group.timer.cancel()
        task = asyncio.ensure_future(self._run_batch(group))
        self._flushes.add(task)
        task.add_done_callback(self._flushes.discard)

    async def _run_batch(self, group: _Group) -> None:
        # Entries whose future is already done were cancelled by their
        # deadline; drop them, and dedupe sources so M requests for one
        # source cost one slot in the batch.
        entries = [
            (source, future)
            for source, future in group.entries
            if not future.done()
        ]
        if not entries:
            return
        sources = list(dict.fromkeys(source for source, _future in entries))
        self.batches += 1
        self.coalesced += len(entries)
        self.largest_batch = max(self.largest_batch, len(sources))
        try:
            answers = await self._execute(group.key, sources)
        except Exception as exc:  # noqa: BLE001 - forwarded to every waiter
            for _source, future in entries:
                if not future.done():
                    future.set_exception(exc)
            return
        for source, future in entries:
            if not future.done():
                future.set_result(answers.get(source, frozenset()))

    # --- shutdown -------------------------------------------------------

    async def drain(self) -> None:
        """Reject new arrivals, flush every open window, await batches."""
        self._draining = True
        for key in list(self._groups):
            self._flush(key)
        while self._flushes:
            await asyncio.gather(*list(self._flushes), return_exceptions=True)

    # --- reporting ------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        return {
            "window_ms": self.window * 1000.0,
            "max_batch": self.max_batch,
            "max_pending": self.max_pending,
            "pending": self.pending,
            "open_windows": len(self._groups),
            "requests": self.requests,
            "batches": self.batches,
            "coalesced": self.coalesced,
            "largest_batch": self.largest_batch,
            "overloaded": self.overloaded,
            "expired": self.expired,
        }

    def __repr__(self):
        return (
            f"RequestCoalescer(window={self.window * 1000:.1f}ms, "
            f"pending={self.pending}/{self.max_pending}, "
            f"batches={self.batches})"
        )


def _swallow_result(task: asyncio.Task) -> None:
    if not task.cancelled():
        task.exception()
