"""The network serving layer: asyncio NDJSON/TCP over a SolverService.

Public surface::

    from repro.server import SolverServer, ServerThread, SolverClient

    service = SolverService(database)
    server = SolverServer(service, program, window_ms=5)
    with ServerThread(server) as live:
        with SolverClient(port=live.port) as client:
            client.solve("ann")          # rides a coalesced batch
            client.solve_batch(["a", "b"])
            client.add_fact("up", "x", "y")

Concurrent ``solve`` requests that arrive within the coalescing window
are answered by ONE ``solve_batch`` call — the shared reachability
sweep and ``P_M`` fixpoint are paid once per window, not once per
connection.  Admission control bounds the pending queue (structured
``overloaded`` errors, never unbounded queuing), per-request deadlines
expire cooperatively at batch boundaries, and shutdown drains in-flight
batches before closing.  ``GET /health`` and ``GET /metrics`` answer on
the same port.

See ``docs/serving.md`` for the protocol specification and operational
notes, and DESIGN.md ("Network serving") for the architecture.
"""

from .client import (
    AsyncSolverClient,
    SolverClient,
    async_http_get,
    http_get,
)
from .coalescer import RequestCoalescer
from .protocol import (
    CLUSTER_OPS,
    MAX_FRAME_BYTES,
    OPS,
    DeadlineExceededError,
    OverloadedError,
    ProtocolError,
    ReadOnlyError,
    ServerError,
    ShuttingDownError,
    WorkerFailedError,
    decode_request,
    encode_frame,
)
from .server import ServerThread, SolverServer

__all__ = [
    "CLUSTER_OPS",
    "MAX_FRAME_BYTES",
    "OPS",
    "AsyncSolverClient",
    "DeadlineExceededError",
    "OverloadedError",
    "ProtocolError",
    "ReadOnlyError",
    "RequestCoalescer",
    "ServerError",
    "ServerThread",
    "ShuttingDownError",
    "SolverClient",
    "SolverServer",
    "WorkerFailedError",
    "async_http_get",
    "decode_request",
    "encode_frame",
    "http_get",
]
