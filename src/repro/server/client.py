"""Client libraries for the NDJSON serving protocol.

Two clients over one wire format:

* :class:`SolverClient` — synchronous, one blocking socket, one request
  in flight at a time.  The right tool for scripts, shells, and tests
  that drive the server from ordinary code;
* :class:`AsyncSolverClient` — asyncio, pipelines any number of
  concurrent requests on one connection and routes responses by ``id``.
  Twenty ``solve()`` coroutines fired together arrive inside one
  coalescing window and come back as one shared batch.

Both raise the structured protocol errors
(:class:`~repro.server.protocol.OverloadedError`,
:class:`~repro.server.protocol.DeadlineExceededError`, ...) so callers
implement backoff with ``except`` clauses, not string matching.

Both clients are also failover-aware: an **idempotent** request
(``ping``/``solve``/``solve_batch``/``stats``/``epoch``) that fails
with ``worker_failed`` (a cluster worker died mid-request) or a
connection reset is retried once — reconnecting first when the
transport died — before the typed error is re-raised.  Mutations are
NEVER retried: a reset after ``add_fact`` leaves the write's fate
unknown, and blind replay could double-apply it; callers must
reconcile via ``db_version`` instead.  Tune with
``failover_retries=0`` to disable.

``http_get`` / ``async_http_get`` fetch the operational endpoints
(``/health``, ``/metrics``) that live on the same port.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import socket
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from .protocol import (
    IDEMPOTENT_OPS,
    MAX_FRAME_BYTES,
    ProtocolError,
    WorkerFailedError,
    decode_answer_map,
    decode_answers,
    decode_value,
    encode_frame,
    encode_value,
    error_from_payload,
)


class SolverClient:
    """Synchronous client: one socket, one request in flight."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: Optional[float] = 30.0,
        failover_retries: int = 1,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.failover_retries = failover_retries
        self.retries = 0  #: lifetime count of failover retries taken
        self._ids = itertools.count(1)
        self._connect()

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._file = self._sock.makefile("rwb")

    def _reconnect(self) -> None:
        try:
            self.close()
        except OSError:
            pass
        self._connect()

    # --- transport ------------------------------------------------------

    def request(self, op: str, params: Optional[Dict] = None):
        """One round trip; returns ``result`` or raises the mapped error.

        Idempotent ops get ``failover_retries`` extra attempts on
        ``worker_failed`` or a dead connection (reconnecting first);
        mutations fail fast — replaying a write whose fate is unknown
        could double-apply it.
        """
        budget = self.failover_retries if op in IDEMPOTENT_OPS else 0
        while True:
            try:
                return self._request_once(op, params)
            except WorkerFailedError:
                if budget <= 0:
                    raise
                budget -= 1
                self.retries += 1
            except ConnectionError:
                if budget <= 0:
                    raise
                budget -= 1
                self.retries += 1
                self._reconnect()

    def _request_once(self, op: str, params: Optional[Dict] = None):
        request_id = next(self._ids)
        frame = encode_frame(
            {"id": request_id, "op": op, "params": params or {}}
        )
        self._file.write(frame)
        self._file.flush()
        while True:
            line = self._file.readline(MAX_FRAME_BYTES)
            if not line:
                raise ConnectionError("server closed the connection")
            response = json.loads(line)
            # A sync client has one request outstanding, but tolerate
            # stray frames (e.g. a late response after a timeout).
            if response.get("id") == request_id:
                break
        if response.get("ok"):
            return response.get("result")
        raise error_from_payload(response.get("error", {}))

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "SolverClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # --- operations -----------------------------------------------------

    def ping(self) -> bool:
        return self.request("ping") == "pong"

    def solve(
        self,
        source=None,
        method: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        program: Optional[str] = None,
    ) -> FrozenSet:
        """Answers for one bound goal; rides a coalesced batch server-side."""
        result = self.request(
            "solve", _solve_params(source, method, deadline_ms, program)
        )
        return decode_answers(result["answers"])

    def solve_batch(
        self,
        sources: Iterable,
        method: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        program: Optional[str] = None,
    ) -> Dict[object, FrozenSet]:
        params = _solve_params(None, method, deadline_ms, program)
        params["sources"] = [encode_value(source) for source in sources]
        result = self.request("solve_batch", params)
        return decode_answer_map(result["answers"])

    def add_fact(self, name: str, *values) -> bool:
        result = self.request(
            "add_fact",
            {"name": name, "values": [encode_value(v) for v in values]},
        )
        return bool(result["added"])

    def add_facts(self, name: str, tuples: Iterable[Tuple]) -> int:
        rows = [[encode_value(v) for v in row] for row in tuples]
        result = self.request("add_facts", {"name": name, "tuples": rows})
        return int(result["added"])

    def remove_fact(self, name: str, *values) -> bool:
        result = self.request(
            "remove_fact",
            {"name": name, "values": [encode_value(v) for v in values]},
        )
        return bool(result["removed"])

    def remove_facts(self, name: str, tuples: Iterable[Tuple]) -> int:
        rows = [[encode_value(v) for v in row] for row in tuples]
        result = self.request("remove_facts", {"name": name, "tuples": rows})
        return int(result["removed"])

    def stats(self) -> Dict[str, object]:
        return self.request("stats")

    def __repr__(self):
        return f"SolverClient({self.host}:{self.port})"


class AsyncSolverClient:
    """Asyncio client: pipelines concurrent requests on one connection."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        host: Optional[str] = None,
        port: Optional[int] = None,
        failover_retries: int = 1,
    ):
        """``host``/``port`` enable reconnect-on-failover; a client
        built from a bare stream pair cannot redial and only retries
        ``worker_failed`` responses (the connection is still alive)."""
        self._reader = reader
        self._writer = writer
        self._host = host
        self._port = port
        self.failover_retries = failover_retries
        self.retries = 0  # guarded-by: @loop
        self._closed = False  # guarded-by: @loop
        self._conn_lock = asyncio.Lock()
        self._ids = itertools.count(1)
        self._pending: Dict[int, asyncio.Future] = {}  # guarded-by: @loop
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 0,
        failover_retries: int = 1,
    ) -> "AsyncSolverClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_FRAME_BYTES
        )
        return cls(
            reader,
            writer,
            host=host,
            port=port,
            failover_retries=failover_retries,
        )

    # --- transport ------------------------------------------------------

    async def _read_loop(self) -> None:
        error: Exception = ConnectionError("server closed the connection")
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                response = json.loads(line)
                future = self._pending.pop(response.get("id"), None)
                if future is None or future.done():
                    continue
                if response.get("ok"):
                    future.set_result(response.get("result"))
                else:
                    future.set_exception(
                        error_from_payload(response.get("error", {}))
                    )
        except Exception as exc:  # noqa: BLE001 - forwarded to waiters
            error = exc
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(error)
            self._pending.clear()

    async def request(self, op: str, params: Optional[Dict] = None):
        """One pipelined round trip, with the same failover policy as
        the sync client: idempotent ops retry ``worker_failed`` and
        dead connections (redialling when possible), mutations never.
        """
        budget = self.failover_retries if op in IDEMPOTENT_OPS else 0
        while True:
            try:
                return await self._request_once(op, params)
            except WorkerFailedError:
                if budget <= 0:
                    raise
                budget -= 1
                self.retries += 1
            except ConnectionError:
                if budget <= 0 or self._closed or self._host is None:
                    raise
                budget -= 1
                self.retries += 1
                await self._ensure_connected()

    async def _request_once(self, op: str, params: Optional[Dict] = None):
        if self._closed:
            raise ConnectionError("client is closed")
        if self._reader_task.done():
            raise ConnectionError("server closed the connection")
        request_id = next(self._ids)
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(
            encode_frame({"id": request_id, "op": op, "params": params or {}})
        )
        await self._writer.drain()
        return await future

    async def _ensure_connected(self) -> None:
        """Redial after the transport died.  Serialized so concurrent
        retries of pipelined requests share ONE reconnect."""
        async with self._conn_lock:
            if self._closed:
                raise ConnectionError("client is closed")
            if not self._reader_task.done():
                return  # a sibling retry already reconnected
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except OSError:
                pass
            reader, writer = await asyncio.open_connection(
                self._host, self._port, limit=MAX_FRAME_BYTES
            )
            self._reader = reader
            self._writer = writer
            self._reader_task = asyncio.ensure_future(self._read_loop())

    async def close(self) -> None:
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):  # noqa: BLE001
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "AsyncSolverClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # --- operations -----------------------------------------------------

    async def ping(self) -> bool:
        return await self.request("ping") == "pong"

    async def solve(
        self,
        source=None,
        method: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        program: Optional[str] = None,
    ) -> FrozenSet:
        result = await self.request(
            "solve", _solve_params(source, method, deadline_ms, program)
        )
        return decode_answers(result["answers"])

    async def solve_batch(
        self,
        sources: Iterable,
        method: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        program: Optional[str] = None,
    ) -> Dict[object, FrozenSet]:
        params = _solve_params(None, method, deadline_ms, program)
        params["sources"] = [encode_value(source) for source in sources]
        result = await self.request("solve_batch", params)
        return decode_answer_map(result["answers"])

    async def add_fact(self, name: str, *values) -> bool:
        result = await self.request(
            "add_fact",
            {"name": name, "values": [encode_value(v) for v in values]},
        )
        return bool(result["added"])

    async def add_facts(self, name: str, tuples: Iterable[Tuple]) -> int:
        rows = [[encode_value(v) for v in row] for row in tuples]
        result = await self.request(
            "add_facts", {"name": name, "tuples": rows}
        )
        return int(result["added"])

    async def remove_fact(self, name: str, *values) -> bool:
        result = await self.request(
            "remove_fact",
            {"name": name, "values": [encode_value(v) for v in values]},
        )
        return bool(result["removed"])

    async def remove_facts(self, name: str, tuples: Iterable[Tuple]) -> int:
        rows = [[encode_value(v) for v in row] for row in tuples]
        result = await self.request(
            "remove_facts", {"name": name, "tuples": rows}
        )
        return int(result["removed"])

    async def stats(self) -> Dict[str, object]:
        return await self.request("stats")


def _solve_params(source, method, deadline_ms, program) -> Dict[str, object]:
    params: Dict[str, object] = {}
    if source is not None:
        params["source"] = encode_value(source)
    if method is not None:
        params["method"] = method
    if deadline_ms is not None:
        params["deadline_ms"] = deadline_ms
    if program is not None:
        params["program"] = program
    return params


# --- the HTTP operational surface ------------------------------------------


def _parse_http(data: bytes):
    head, _sep, body = data.partition(b"\r\n\r\n")
    try:
        status = int(head.split(None, 2)[1])
    except (IndexError, ValueError) as exc:
        raise ProtocolError(f"malformed HTTP response: {head[:80]!r}") from exc
    payload = json.loads(body) if body else None
    return status, payload


def http_get(
    host: str, port: int, path: str, timeout: float = 10.0
) -> Tuple[int, object]:
    """Fetch ``/health`` or ``/metrics``; returns (status, parsed JSON)."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(
            f"GET {path} HTTP/1.0\r\nHost: {host}\r\n\r\n".encode("ascii")
        )
        chunks: List[bytes] = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return _parse_http(b"".join(chunks))


async def async_http_get(
    host: str, port: int, path: str
) -> Tuple[int, object]:
    """Asyncio twin of :func:`http_get` for use inside the event loop."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET {path} HTTP/1.0\r\nHost: {host}\r\n\r\n".encode("ascii")
        )
        await writer.drain()
        data = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    return _parse_http(data)
