"""The asyncio network server over one :class:`SolverService`.

One TCP listener speaks both protocols: connections whose first line is
an NDJSON frame enter the request loop, connections whose first line is
an HTTP request line get the minimal operational surface (``GET
/health``, ``GET /metrics``) and are closed — no second port, no HTTP
dependency.

Every NDJSON frame is handled in its own task, so ``solve`` requests
pipelined on a single connection coalesce into shared batches exactly
like requests from separate connections (responses are matched by
``id``, not by order).  Batch execution runs on a small thread pool —
the engine is synchronous CPU-bound Python — while the event loop keeps
accepting, coalescing, and timing out requests; the
:class:`~repro.service.SolverService` locks added for this layer make
the overlap safe.

Shutdown (:meth:`SolverServer.stop`) is graceful by construction:
close the listener (stop accepting), drain the coalescer (open windows
flush immediately, in-flight batches complete, their waiters get
answers), give connection handlers a grace period to write the queued
responses, then close the transports and the worker pool.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Set

from ..datalog.parser import parse_program
from ..datalog.program import Program
from ..service import SolverService, target_fingerprint
from ..service.metrics import LatencyHistogram
from ..service.service import BATCH_METHODS, _target_source
from .coalescer import RequestCoalescer
from .protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_request,
    decode_value,
    encode_answer_map,
    encode_answers,
    encode_frame,
    encode_value,
    error_for_exception,
    error_response,
    ok_response,
)

_PROGRAM_CACHE_LIMIT = 64


class SolverServer:
    """Serve a :class:`SolverService` over NDJSON/TCP with coalescing."""

    def __init__(
        self,
        service: SolverService,
        program: Optional[Program] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        window_ms: float = 5.0,
        max_batch: int = 64,
        max_pending: int = 256,
        default_deadline_ms: Optional[float] = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        executor_workers: int = 2,
    ):
        """``program`` is the default query shape served to requests
        that do not carry their own ``program`` text; ``port=0`` binds
        an ephemeral port (read it back from ``self.port`` after
        :meth:`start`).  ``window_ms`` is the coalescing window,
        ``max_pending`` the admission-control bound, and
        ``default_deadline_ms`` the deadline applied to requests that
        do not set one (None = wait forever)."""
        self.service = service
        self.host = host
        self.port = port
        self.default_deadline_ms = default_deadline_ms
        self.max_frame_bytes = max_frame_bytes
        self.coalescer = RequestCoalescer(
            self._execute_batch,
            window=window_ms / 1000.0,
            max_batch=max_batch,
            max_pending=max_pending,
        )
        self._programs: Dict[str, Program] = {}  # guarded-by: @loop
        #: Source text per program key — what the cluster front forwards
        #: to workers so both sides agree on the key for one program.
        self._program_texts: Dict[str, str] = {}  # guarded-by: @loop
        self._default_key: Optional[str] = None  # guarded-by: @loop
        if program is not None:
            self._default_key = target_fingerprint(program)
            self._programs[self._default_key] = program
            self._program_texts[self._default_key] = str(program)
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers, thread_name_prefix="repro-batch"
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: Set[asyncio.Task] = set()  # guarded-by: @loop
        self._writers: Set[asyncio.StreamWriter] = set()  # guarded-by: @loop
        self._inflight_frames = 0  # guarded-by: @loop
        self._stopping = False  # guarded-by: @loop
        # Lifetime counters, surfaced on /metrics.  All of them are
        # event-loop-confined (mutated only from coroutines), so they
        # need no lock; request_latency has its own because the summary
        # may be read from other threads via metrics_snapshot callers.
        self.request_latency = LatencyHistogram()
        self.connections = 0  # guarded-by: @loop
        self.http_requests = 0  # guarded-by: @loop
        self.requests = 0  # guarded-by: @loop
        self.responses = 0  # guarded-by: @loop
        self.errors = 0  # guarded-by: @loop
        self.error_codes: Dict[str, int] = {}  # guarded-by: @loop

    # --- lifecycle ------------------------------------------------------

    async def start(self) -> "SolverServer":
        """Bind and start accepting; resolves the ephemeral port."""
        self._server = await asyncio.start_server(
            self._on_connection,
            self.host,
            self.port,
            limit=self.max_frame_bytes,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self, grace: float = 5.0) -> None:
        """Graceful shutdown: stop accepting, drain, close.

        In-flight requests (queued in a coalescing window or executing
        on the worker pool) are answered; requests arriving during the
        drain get a structured ``shutting_down`` error.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._stopping = True
        await self.coalescer.drain()
        # The drained futures resolve waiters on other tasks; give the
        # frame handlers the grace period to write their responses.
        deadline = time.monotonic() + grace
        while self._inflight_frames and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        for writer in list(self._writers):
            writer.close()
        if self._conn_tasks:
            await asyncio.wait(list(self._conn_tasks), timeout=grace)
        self._executor.shutdown(wait=False)

    def run(self) -> int:
        """Blocking convenience for the CLI: serve until SIGINT/SIGTERM."""
        try:
            return asyncio.run(self._serve_until_signalled())
        except KeyboardInterrupt:  # pragma: no cover - signal fallback
            return 0

    async def _serve_until_signalled(self) -> int:
        await self.start()
        print(
            f"repro server listening on {self.host}:{self.port} "
            f"(window {self.coalescer.window * 1000:.1f}ms, "
            f"max pending {self.coalescer.max_pending})",
            file=sys.stderr,
        )
        stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop_event.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        try:
            await stop_event.wait()
        finally:
            print(
                "shutting down: draining in-flight batches", file=sys.stderr
            )
            await self.stop()
        return 0

    # --- connection handling -------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        self.connections += 1
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        frame_tasks: Set[asyncio.Task] = set()
        try:
            line = await reader.readline()
            if line and line.split(None, 1)[:1] in ([b"GET"], [b"HEAD"]):
                await self._handle_http(line, reader, writer)
                return
            while line:
                if line.strip():
                    frame = asyncio.ensure_future(
                        self._handle_frame(line, writer, write_lock)
                    )
                    frame_tasks.add(frame)
                    frame.add_done_callback(frame_tasks.discard)
                line = await reader.readline()
        except ValueError:
            # readline() overran the frame limit; the stream cannot be
            # re-synchronized, so report and drop the connection.
            await self._send(
                writer,
                error_response(
                    None,
                    "bad_request",
                    f"frame exceeds {self.max_frame_bytes} bytes",
                ),
                write_lock,
            )
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            if frame_tasks:
                await asyncio.gather(*frame_tasks, return_exceptions=True)
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_frame(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        started = time.perf_counter()
        self.requests += 1
        self._inflight_frames += 1
        request_id = None
        try:
            try:
                request = decode_request(line)
                request_id = request.get("id")
                result = await self._dispatch(request)
                payload = ok_response(request_id, result)
            except Exception as exc:  # noqa: BLE001 - reported on the wire
                code, message = error_for_exception(exc)
                self.errors += 1
                self.error_codes[code] = self.error_codes.get(code, 0) + 1
                payload = error_response(request_id, code, message)
            await self._send(writer, payload, write_lock)
            self.responses += 1
        finally:
            self._inflight_frames -= 1
            self.request_latency.observe(time.perf_counter() - started)

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        payload: Dict[str, object],
        write_lock: asyncio.Lock,
    ) -> None:
        try:
            async with write_lock:
                writer.write(encode_frame(payload))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass

    # --- dispatch -------------------------------------------------------

    async def _dispatch(self, request: Dict[str, object]):
        op = request["op"]
        params = request.get("params", {})
        if op == "ping":
            return "pong"
        if op == "stats":
            return self.metrics_snapshot()
        if op == "add_fact":
            name, values = _fact_params(params)
            result = await self._mutate(inserts={name: [tuple(values)]})
            return {"added": bool(result.changed), **_mutation_fields(result)}
        if op == "add_facts":
            name, rows = _rows_params(params)
            result = await self._mutate(inserts={name: rows})
            return {"added": result.changed, **_mutation_fields(result)}
        if op == "remove_fact":
            name, values = _fact_params(params)
            result = await self._mutate(deletes={name: [tuple(values)]})
            return {
                "removed": bool(result.changed),
                **_mutation_fields(result),
            }
        if op == "remove_facts":
            name, rows = _rows_params(params)
            result = await self._mutate(deletes={name: rows})
            return {"removed": result.changed, **_mutation_fields(result)}
        if op == "solve":
            return await self._solve(params)
        if op == "solve_batch":
            return await self._solve_batch(params)
        raise ProtocolError(
            f"op {op!r} is not served here (cluster control ops are "
            "answered only by repro.cluster processes)"
        )

    async def _mutate(self, inserts=None, deletes=None):
        """The single write path behind the four mutation ops.

        Overridable: the cluster front replaces this with its
        replicated single-writer protocol (apply locally, broadcast the
        delta, reconcile stale workers); a worker replica overrides it
        to reject client mutations with ``read_only``.
        """
        return self.service.mutate(inserts=inserts, deletes=deletes)

    async def _solve(self, params: Dict[str, object]):
        key, program, method, deadline = self._serve_params(params)
        source = decode_value(params.get("source"))
        if source is None:
            source = _target_source(program)
        if source is None:
            raise ProtocolError(
                "solve needs a 'source' (the program goal has no bound "
                "constant to default to)"
            )
        answers = await self.coalescer.submit((key, method), source, deadline)
        return {
            "source": encode_value(source),
            "answers": encode_answers(answers),
        }

    async def _solve_batch(self, params: Dict[str, object]):
        key, _program, method, deadline = self._serve_params(params)
        raw = params.get("sources")
        if not isinstance(raw, list) or not raw:
            raise ProtocolError("'sources' must be a non-empty list")
        sources = [decode_value(source) for source in raw]
        answers = await self.coalescer.submit_batch(
            (key, method), sources, deadline
        )
        return {"answers": encode_answer_map(answers)}

    def _serve_params(self, params: Dict[str, object]):
        method = params.get("method", "adaptive")
        if method not in BATCH_METHODS:
            raise ProtocolError(
                f"unknown method {method!r}; expected one of "
                f"{', '.join(BATCH_METHODS)}"
            )
        deadline_ms = params.get("deadline_ms", self.default_deadline_ms)
        deadline = None
        if deadline_ms is not None:
            if not isinstance(deadline_ms, (int, float)):
                raise ProtocolError("'deadline_ms' must be a number")
            deadline = deadline_ms / 1000.0
        key, program = self._resolve_program(params.get("program"))
        return key, program, method, deadline

    def _resolve_program(self, text):
        if text is None:
            if self._default_key is None:
                raise ProtocolError(
                    "server has no default program; pass 'program' text"
                )
            return self._default_key, self._programs[self._default_key]
        if not isinstance(text, str):
            raise ProtocolError("'program' must be Datalog source text")
        key = f"wire:{hash_text(text)}"
        program = self._programs.get(key)
        if program is None:
            program = _parse_wire_program(text)
            if len(self._programs) >= _PROGRAM_CACHE_LIMIT:
                # Keep the default program; everything else can reparse.
                default = (
                    None
                    if self._default_key is None
                    else self._programs[self._default_key]
                )
                self._programs.clear()
                self._program_texts.clear()
                if default is not None:
                    self._programs[self._default_key] = default
                    self._program_texts[self._default_key] = str(default)
            self._programs[key] = program
            self._program_texts[key] = text
        return key, program

    # --- execution ------------------------------------------------------

    async def _execute_batch(self, key, sources):
        """The coalescer's execute hook: one solve_batch per flush, run
        on the worker pool so the event loop stays responsive."""
        program_key, method = key
        program = self._programs[program_key]
        loop = asyncio.get_running_loop()
        result = await loop.run_in_executor(
            self._executor,
            lambda: self.service.solve_batch(program, sources, method=method),
        )
        return result.answers

    # --- HTTP operational surface --------------------------------------

    async def _handle_http(
        self,
        first_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.http_requests += 1
        try:
            http_method, path = first_line.decode("ascii").split()[:2]
        except (UnicodeDecodeError, ValueError):
            await _http_reply(writer, 400, {"error": "malformed request"})
            return
        # Drain the header block; the endpoints take no body.
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
        if http_method != "GET":
            await _http_reply(writer, 405, {"error": "method not allowed"})
        elif path == "/health":
            await _http_reply(writer, 200, self.health_payload())
        elif path == "/metrics":
            await _http_reply(writer, 200, self.metrics_snapshot())
        else:
            await _http_reply(writer, 404, {"error": f"no route {path}"})

    # --- reporting ------------------------------------------------------

    def health_payload(self) -> Dict[str, object]:
        """The ``GET /health`` body.  Overridable: the cluster front
        aggregates worker liveness into this report."""
        return {
            "status": "draining" if self._stopping else "ok",
            "db_version": self.service.db_version,
        }

    def metrics_snapshot(self) -> Dict[str, object]:
        """The full serving picture: transport, coalescer, and service
        counters (including batch latency percentiles) in one report."""
        return {
            "server": {
                "host": self.host,
                "port": self.port,
                "draining": self._stopping,
                "connections": self.connections,
                "open_connections": len(self._writers),
                "requests": self.requests,
                "responses": self.responses,
                "errors": self.errors,
                "error_codes": dict(self.error_codes),
                "http_requests": self.http_requests,
                "latency_ms": self.request_latency.summary(),
            },
            "coalescer": self.coalescer.stats(),
            "service": self.service.stats(),
        }

    def __repr__(self):
        return (
            f"SolverServer({self.host}:{self.port}, "
            f"requests={self.requests}, coalescer={self.coalescer!r})"
        )


def _required_str(params: Dict[str, object], field: str) -> str:
    value = params.get(field)
    if not isinstance(value, str) or not value:
        raise ProtocolError(f"'{field}' must be a non-empty string")
    return value


def _fact_params(params: Dict[str, object]):
    name = _required_str(params, "name")
    raw = params.get("values")
    if not isinstance(raw, list) or not raw:
        raise ProtocolError("'values' must be a non-empty list")
    return name, [decode_value(value) for value in raw]


def _rows_params(params: Dict[str, object]):
    name = _required_str(params, "name")
    raw = params.get("tuples")
    if not isinstance(raw, list):
        raise ProtocolError("'tuples' must be a list of rows")
    return name, [tuple(decode_value(v) for v in row) for row in raw]


def _mutation_fields(result) -> Dict[str, object]:
    """The shared response tail of the four mutation ops."""
    return {
        "db_version": result.db_version,
        "plans_maintained": result.plans_maintained,
        "plans_invalidated": result.plans_invalidated,
        "deferred": result.deferred,
        "maintenance": dict(result.maintenance),
    }


def hash_text(text: str) -> str:
    import hashlib

    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def _parse_wire_program(text: str) -> Program:
    """Parse request-supplied program text into a rule-only Program.

    Ground facts are rejected rather than silently merged — the EDB is
    owned by the server's database and mutated only through the
    ``add_fact``/``add_facts`` ops, so a fact smuggled in program text
    would be invisible to cache invalidation.
    """
    program = parse_program(text)
    facts = [rule for rule in program.rules if rule.is_fact]
    if facts:
        raise ProtocolError(
            f"program text contains {len(facts)} ground fact(s); the EDB "
            "is server-owned — use the add_fact/add_facts ops instead"
        )
    if program.query is None:
        raise ProtocolError("program text needs a ?- goal")
    return program


async def _http_reply(
    writer: asyncio.StreamWriter, status: int, body: Dict[str, object]
) -> None:
    reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
               405: "Method Not Allowed"}
    payload = json.dumps(body, sort_keys=True, default=str).encode("utf-8")
    head = (
        f"HTTP/1.0 {status} {reasons.get(status, 'Error')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    try:
        writer.write(head.encode("ascii") + payload)
        await writer.drain()
    except (ConnectionResetError, BrokenPipeError):
        pass


class ServerThread:
    """Run a :class:`SolverServer` on a dedicated event-loop thread.

    The bridge for synchronous callers — tests, the sync client
    examples, benchmark harnesses — that want a live server without
    adopting asyncio themselves::

        with ServerThread(SolverServer(service, program)) as server:
            client = SolverClient(port=server.port)
            ...

    ``__exit__`` performs the full graceful shutdown (drain, close).
    """

    def __init__(self, server: SolverServer):
        self.server = server
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> SolverServer:
        ready = threading.Event()
        failure: list = []

        def _run():
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(self.server.start())
            except Exception as exc:  # pragma: no cover - bind failures
                failure.append(exc)
                ready.set()
                return
            ready.set()
            try:
                loop.run_forever()
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=_run, name="repro-server", daemon=True
        )
        self._thread.start()
        if not ready.wait(timeout=10):
            raise RuntimeError("server thread failed to start in time")
        if failure:
            raise failure[0]
        return self.server

    def stop(self, grace: float = 5.0) -> None:
        if self._loop is None or self._loop.is_closed():
            return  # never started, or already stopped
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(grace=grace), self._loop
        )
        future.result(timeout=grace + 10)
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10)

    def __enter__(self) -> SolverServer:
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
