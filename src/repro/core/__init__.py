"""The paper's contribution: magic counting methods over CSL queries."""

from .classification import (
    Classification,
    MagicGraphClass,
    NodeClass,
    boundary_index,
    classify_graph,
    classify_nodes,
)
from .complexity import (
    GraphStatistics,
    all_method_predictions,
    compute_statistics,
    predicted_cost,
)
from .cost import AnswerResult
from .counting_method import counting_method, extended_counting_method
from .explain import explain_evaluation
from .csl import CSLInstance, CSLQuery
from .hierarchy import (
    HIERARCHY_RELATIONS,
    REGULAR_EQUIVALENCE_GROUP,
    check_dominance,
    check_regular_equivalence,
)
from .hn_method import hn_method
from .magic_method import magic_set_method
from .methods import all_method_coordinates, magic_counting, method_name
from .multi_source import (
    multi_source_counting,
    multi_source_magic,
    shared_ancestor_sources,
)
from .program_rewrite import (
    evaluate_with_program_rewrite,
    magic_counting_program,
)
from .query_graph import QueryGraph, build_query_graph
from .reduced_sets import (
    Mode,
    ReducedSets,
    Strategy,
    check_theorem1,
    check_theorem2,
)
from .solver import (
    adaptive_solve,
    fact2_answer,
    naive_answer,
    seminaive_answer,
    solve,
    solve_program,
)
from .step1 import (
    basic_step1,
    compute_reduced_sets,
    multiple_step1,
    recurring_step1,
    recurring_step1_scc,
    single_step1,
)
from .step2 import independent_step2, integrated_step2

__all__ = [
    "AnswerResult",
    "CSLInstance",
    "CSLQuery",
    "Classification",
    "GraphStatistics",
    "HIERARCHY_RELATIONS",
    "MagicGraphClass",
    "Mode",
    "NodeClass",
    "QueryGraph",
    "REGULAR_EQUIVALENCE_GROUP",
    "ReducedSets",
    "Strategy",
    "adaptive_solve",
    "all_method_coordinates",
    "all_method_predictions",
    "basic_step1",
    "boundary_index",
    "build_query_graph",
    "check_dominance",
    "check_regular_equivalence",
    "check_theorem1",
    "check_theorem2",
    "classify_graph",
    "classify_nodes",
    "compute_reduced_sets",
    "compute_statistics",
    "counting_method",
    "evaluate_with_program_rewrite",
    "explain_evaluation",
    "extended_counting_method",
    "fact2_answer",
    "hn_method",
    "independent_step2",
    "magic_counting_program",
    "integrated_step2",
    "magic_counting",
    "magic_set_method",
    "method_name",
    "multi_source_counting",
    "multi_source_magic",
    "multiple_step1",
    "shared_ancestor_sources",
    "naive_answer",
    "predicted_cost",
    "recurring_step1",
    "recurring_step1_scc",
    "seminaive_answer",
    "single_step1",
    "solve",
    "solve_program",
]
