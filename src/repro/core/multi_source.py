"""Answering one CSL query for many source constants.

The paper's methods answer ``?- P(a, Y)`` for a single ``a``.  A server
answering the same query shape for many bindings (every user, every
session) faces an amortisation trade-off the single-shot analysis
hides:

* the **magic set method amortises**: the union magic set is computed
  once and the ``P_M`` fixpoint is shared — a value reachable from
  several sources is expanded once, and each source reads its answers
  from ``P_M(source, ·)``;
* the **counting method cannot share**: indices are distances *from a
  particular source*, so each source runs its own counting pass
  (distance sets differ per source);
* the magic counting hybrids inherit counting's per-source Step 1/2.

:func:`multi_source_magic` and :func:`multi_source_counting` implement
the two extremes over one shared cost counter, and the benchmark
``benchmarks/test_multi_source.py`` locates the crossover: few sources
favour counting (per-source wins), many overlapping sources favour the
shared magic fixpoint.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List

from ..datalog.relation import CostCounter
from ..errors import UnsafeQueryError
from .counting_method import counting_method
from .csl import CSLInstance, CSLQuery
from .magic_method import magic_fixpoint


def union_magic_set(instance: CSLInstance, sources: Iterable) -> set:
    """The union magic set: one charged reachability sweep over ``L``
    seeded from every source at once.

    Shared by :func:`multi_source_magic` and the batch solver service —
    a value reachable from several sources is expanded exactly once.
    """
    magic = set(sources)
    frontier = list(magic)
    while frontier:
        value = frontier.pop()
        for _b, successor in instance.left.lookup((value, None)):
            if successor not in magic:
                magic.add(successor)
                frontier.append(successor)
    return magic


def multi_source_magic(
    query: CSLQuery, sources: Iterable, counter: CostCounter = None
) -> Dict[object, FrozenSet]:
    """One shared magic/``P_M`` fixpoint for every source.

    Returns ``{source: answers}``.  Total cost is charged to ``counter``
    (or a fresh one; read it back via ``result_counter`` attribute — the
    function attaches it to the returned dict as ``dict.counter`` would
    be un-Pythonic, so instead pass your own counter in).
    """
    sources = list(sources)
    counter = counter if counter is not None else CostCounter()
    instance = query.instance(counter)

    magic = union_magic_set(instance, sources)
    pm = magic_fixpoint(instance, magic)
    return {
        source: frozenset(pm.get(source, set())) for source in sources
    }


def multi_source_counting(
    query: CSLQuery,
    sources: Iterable,
    counter: CostCounter = None,
    detect_divergence: bool = True,
) -> Dict[object, FrozenSet]:
    """Independent counting runs, one per source, on a shared counter.

    Raises :class:`UnsafeQueryError` as soon as any source's magic graph
    is cyclic (same safety profile as the single-source method).
    """
    counter = counter if counter is not None else CostCounter()
    answers: Dict[object, FrozenSet] = {}
    for source in sources:
        per_source = CSLQuery(query.left, query.exit, query.right, source)
        result = counting_method(
            per_source, counter=counter, detect_divergence=detect_divergence
        )
        answers[source] = result.answers
    return answers


def shared_ancestor_sources(query: CSLQuery, count: int) -> List:
    """A helper for experiments: ``count`` L-side values whose
    reachable regions overlap heavily (all values sorted by out-degree,
    highest first — hubs share the most downstream work)."""
    degree: Dict[object, int] = {}
    for b, _c in query.left:
        degree[b] = degree.get(b, 0) + 1
    ranked = sorted(degree, key=lambda v: (-degree[v], repr(v)))
    return ranked[:count]
