"""The counting method (Section 2) and its cyclic-safe extension.

The counting set ``CS`` indexes every magic value with its distance from
the source::

    CS(0, a).
    CS(J+1, X1) :- CS(J, X), L(X, X1).

and answers are produced by seeding ``P_C`` through the exit relation and
counting back down through ``R``::

    P_C(J, Y)   :- CS(J, X), E(X, Y).
    P_C(J-1, Y) :- P_C(J, Y1), R(Y, Y1).
    Answer(Y)   :- P_C(0, Y).

The method is **unsafe on cyclic magic graphs**: the ``CS`` fixpoint
never terminates.  :func:`counting_method` detects divergence — the
frontier at each level is a function of the previous frontier alone, so
a repeated frontier set proves the fixpoint periodic (with a coarser
``level > |seen values|`` backstop) — and raises
:class:`UnsafeQueryError` within O(cycle length) of entering the cycle,
reproducing the "unsafe" entry of Table 1 without an actual
non-termination.

:func:`extended_counting_method` reconstructs the [MPS] extension the
paper cites in the Section 3 footnote (cost there: Θ(m × n³)): a common
index ``k`` matching ``k`` L-steps with ``k`` R-steps corresponds to a
path in the product graph ``G_L × G_R``, so if any common ``k`` exists
one exists below ``n_L × n_R``; truncating the counting fixpoint at that
level is therefore complete, and safe on every input.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..errors import UnsafeQueryError
from .cost import AnswerResult
from .csl import CSLInstance, CSLQuery
from .query_graph import build_query_graph


def compute_counting_set(
    instance: CSLInstance,
    max_level: Optional[int] = None,
    detect_divergence: bool = True,
) -> Dict[int, Set[object]]:
    """The ``CS`` fixpoint, level by level.

    Returns ``{index: set of values}``.  When ``max_level`` is given the
    fixpoint is truncated there (used by the extended method); otherwise
    divergence detection (if enabled) raises :class:`UnsafeQueryError`
    on cyclic magic graphs.
    """
    levels: Dict[int, Set[object]] = {0: {instance.source}}
    seen: Set[object] = {instance.source}
    level = 0
    frontier = {instance.source}
    # Divergence witness: the frontier at level k+1 is a function of the
    # frontier at level k alone, so a repeated frontier set makes the
    # sequence periodic — the fixpoint can never drain.  On an acyclic
    # magic graph every walk is bounded, so the frontier empties before
    # any repetition; the check therefore fires exactly on cyclic
    # graphs, and within one period of the cycle being entered (much
    # earlier than the coarse ``level > |seen|`` bound, which can lag by
    # up to n levels on wide graphs).
    seen_frontiers: Set[frozenset] = {frozenset(frontier)}
    while frontier:
        if max_level is not None and level >= max_level:
            break
        next_frontier: Set[object] = set()
        for value in frontier:
            for _b, successor in instance.left.lookup((value, None)):
                next_frontier.add(successor)
                seen.add(successor)
        level += 1
        if not next_frontier:
            break
        levels[level] = next_frontier
        frontier = next_frontier
        if detect_divergence and max_level is None:
            frontier_key = frozenset(frontier)
            if frontier_key in seen_frontiers:
                raise UnsafeQueryError(
                    "counting method is unsafe: the magic graph is cyclic "
                    f"(frontier set repeated at level {level}; the CS "
                    "fixpoint is periodic and would grow forever)"
                )
            seen_frontiers.add(frontier_key)
            if level > len(seen):
                # Backstop: a walk longer than the number of distinct
                # values repeats a value, which also proves a cycle.
                raise UnsafeQueryError(
                    "counting method is unsafe: the magic graph is cyclic "
                    f"(frontier still alive at level {level} with only "
                    f"{len(seen)} distinct values)"
                )
    return levels


def descend_answers(
    instance: CSLInstance, pc_levels: Dict[int, Set[object]]
) -> Set[object]:
    """Apply ``P_C(J-1, Y) :- P_C(J, Y1), R(Y, Y1)`` down to level 0.

    ``pc_levels`` maps index to the set of ``Y`` values known at that
    index.  The caller's mapping is left untouched (the descent works on
    a fresh copy), so shared or cached level sets can be reused across
    queries; the level-0 set is returned.
    """
    if not pc_levels:
        return set()
    working = {level: set(values) for level, values in pc_levels.items()}
    for level in range(max(working), 0, -1):
        current = working.get(level)
        if not current:
            continue
        below = working.setdefault(level - 1, set())
        for y1 in current:
            for y, _y1 in instance.right.lookup((None, y1)):
                below.add(y)
    return working.get(0, set())


def seed_exit(
    instance: CSLInstance, cs_levels: Dict[int, Set[object]]
) -> Dict[int, Set[object]]:
    """Apply ``P_C(J, Y) :- CS(J, X), E(X, Y)``."""
    pc_levels: Dict[int, Set[object]] = {}
    for level, values in cs_levels.items():
        for value in values:
            for _x, y in instance.exit.lookup((value, None)):
                pc_levels.setdefault(level, set()).add(y)
    return pc_levels


def counting_method(
    query: CSLQuery,
    counter=None,
    detect_divergence: bool = True,
    max_level: Optional[int] = None,
) -> AnswerResult:
    """Evaluate ``query`` with the pure counting method.

    Raises :class:`UnsafeQueryError` on cyclic magic graphs (unless a
    ``max_level`` truncation is forced, which sacrifices completeness).
    """
    instance = query.instance(counter)
    cs_levels = compute_counting_set(
        instance, max_level=max_level, detect_divergence=detect_divergence
    )
    pc_levels = seed_exit(instance, cs_levels)
    answers = descend_answers(instance, pc_levels)
    return AnswerResult(
        answers=frozenset(answers),
        method="counting",
        cost=instance.counter,
        details={
            "cs_pairs": sum(len(v) for v in cs_levels.values()),
            "cs_levels": len(cs_levels),
        },
    )


def extended_counting_method(query: CSLQuery, counter=None) -> AnswerResult:
    """The cyclic-safe counting extension ([MPS] reconstruction).

    Truncates the counting fixpoint at level ``n_L × n_R`` of the query
    graph.  Complete because a common L/R index, if any exists, exists
    below the product-graph size; safe because the level cap bounds the
    fixpoint on every input.
    """
    graph = build_query_graph(query)
    cap = max(1, graph.n_l * max(1, graph.n_r))
    instance = query.instance(counter)
    cs_levels = compute_counting_set(
        instance, max_level=cap, detect_divergence=False
    )
    pc_levels = seed_exit(instance, cs_levels)
    answers = descend_answers(instance, pc_levels)
    return AnswerResult(
        answers=frozenset(answers),
        method="extended_counting",
        cost=instance.counter,
        details={
            "cs_pairs": sum(len(v) for v in cs_levels.values()),
            "level_cap": cap,
        },
    )
