"""Graph statistics and the paper's Θ cost formulas (Tables 1-5).

Section 3 and Sections 6-9 express every method's cost in terms of
quantities of the query graph.  :class:`GraphStatistics` computes all of
them; :func:`predicted_cost` evaluates the corresponding Θ-expression.
The benchmark harness divides measured tuple retrievals by these
predictions across a size sweep — a bounded ratio confirms the paper's
asymptotic shape.

Quantities (notation as in the paper; ``X̂`` rendered ``x_hat``):

=========  ==========================================================
``n_l, m_l, n_r, m_r, m_e``  sizes of G_L, G_R, G_E
``i_x``    single-method frontier: the largest index such that every
           node with (shortest) index below it is single
``n_x, m_x``    nodes/arcs of the subgraph induced by single nodes with
                distance < i_x
``n_j_hat, m_j_hat``  single nodes below i_x with no path to any node
                with distance >= i_x; arcs entering them
``n_s, m_s``    single nodes; arcs among them
``n_i_hat, m_i_hat``  single nodes with no path to any multiple or
                recurring node; arcs entering them
``n_m, m_m``    single+multiple nodes; arcs among them
``n_m_hat, m_m_hat``  single/multiple nodes with no path to any
                recurring node; arcs entering them
=========  ==========================================================

The cost expressions follow the unified reading discussed in DESIGN.md:
within one strategy the counting term is identical for the independent
and the integrated variant (RC is the same set), and the two variants
differ only in the magic term (``m_x̂``-style exclusions for independent
vs. the larger ``m_x``-style exclusions for integrated).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from .classification import (
    Classification,
    MagicGraphClass,
    boundary_index,
    classify_graph,
)
from .csl import CSLQuery
from .query_graph import QueryGraph, build_query_graph


def _reaches_target(graph: QueryGraph, targets: Set[object]) -> Set[object]:
    """Nodes of G_L with a directed path (length >= 1) to ``targets``.

    Computed by reverse BFS from the targets; a target node itself is
    included only if it can re-reach a target through an arc.
    """
    predecessors = graph.l_predecessors()
    reaching: Set[object] = set()
    frontier = list(targets)
    while frontier:
        node = frontier.pop()
        for predecessor in predecessors[node]:
            if predecessor not in reaching:
                reaching.add(predecessor)
                frontier.append(predecessor)
    return reaching


def _arcs_within(graph: QueryGraph, nodes: Set[object]) -> int:
    return sum(1 for b, c in graph.l_arcs if b in nodes and c in nodes)


def _arcs_entering(graph: QueryGraph, nodes: Set[object]) -> int:
    return sum(1 for _b, c in graph.l_arcs if c in nodes)


@dataclass
class GraphStatistics:
    """Every quantity the cost tables mention, for one query graph."""

    n_l: int
    m_l: int
    n_r: int
    m_r: int
    m_e: int
    graph_class: MagicGraphClass
    i_x: int
    n_x: int
    m_x: int
    n_j_hat: int
    m_j_hat: int
    n_s: int
    m_s: int
    n_i_hat: int
    m_i_hat: int
    n_m: int
    m_m: int
    n_m_hat: int
    m_m_hat: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "n_L": self.n_l, "m_L": self.m_l, "n_R": self.n_r,
            "m_R": self.m_r, "m_E": self.m_e,
            "class": self.graph_class.value,
            "i_x": self.i_x, "n_x": self.n_x, "m_x": self.m_x,
            "n_ĵ": self.n_j_hat, "m_ĵ": self.m_j_hat,
            "n_s": self.n_s, "m_s": self.m_s,
            "n_î": self.n_i_hat, "m_î": self.m_i_hat,
            "n_m": self.n_m, "m_m": self.m_m,
            "n_m̂": self.n_m_hat, "m_m̂": self.m_m_hat,
        }


def compute_statistics(
    query: CSLQuery,
    graph: Optional[QueryGraph] = None,
    classification: Optional[Classification] = None,
) -> GraphStatistics:
    """All Table 1-5 quantities for ``query``."""
    if graph is None:
        graph = build_query_graph(query)
    if classification is None:
        classification = classify_graph(graph)

    single = classification.single
    multiple = classification.multiple
    recurring = classification.recurring
    distance = classification.shortest_distance

    i_x = boundary_index(classification)
    below = {b for b in single if distance[b] < i_x}
    at_or_above = {b for b in graph.l_nodes if distance[b] >= i_x}
    reaches_above = _reaches_target(graph, at_or_above)
    j_hat = {b for b in below if b not in reaches_above}

    reaches_non_single = _reaches_target(graph, multiple | recurring)
    i_hat = {b for b in single if b not in reaches_non_single}

    finite = single | multiple
    reaches_recurring = _reaches_target(graph, recurring)
    m_hat = {b for b in finite if b not in reaches_recurring}

    return GraphStatistics(
        n_l=graph.n_l,
        m_l=graph.m_l,
        n_r=graph.n_r,
        m_r=graph.m_r,
        m_e=graph.m_e,
        graph_class=classification.graph_class,
        i_x=i_x,
        n_x=len(below),
        m_x=_arcs_within(graph, below),
        n_j_hat=len(j_hat),
        m_j_hat=_arcs_entering(graph, j_hat),
        n_s=len(single),
        m_s=_arcs_within(graph, single),
        n_i_hat=len(i_hat),
        m_i_hat=_arcs_entering(graph, i_hat),
        n_m=len(finite),
        m_m=_arcs_within(graph, finite),
        n_m_hat=len(m_hat),
        m_m_hat=_arcs_entering(graph, m_hat),
    )


# --- Θ-expressions -------------------------------------------------------

_REGULAR_COST = "m_l + n_l * m_r"


def _regular(stats: GraphStatistics) -> int:
    return stats.m_l + stats.n_l * stats.m_r


def predicted_cost(method: str, stats: GraphStatistics) -> Optional[int]:
    """Evaluate the paper's Θ-expression for ``method`` on ``stats``.

    Returns ``None`` when the method is unsafe for the graph class
    (counting on cyclic graphs — the "unsafe" cell of Table 1).
    Methods: ``counting``, ``extended_counting``, ``magic_set``,
    ``mc_basic`` (both modes), ``mc_single_independent``,
    ``mc_single_integrated``, ``mc_multiple_independent``,
    ``mc_multiple_integrated``, ``mc_recurring_independent``,
    ``mc_recurring_integrated``.
    """
    regular = stats.graph_class is MagicGraphClass.REGULAR
    cyclic = stats.graph_class is MagicGraphClass.CYCLIC
    m_l, m_r, n_l = stats.m_l, stats.m_r, stats.n_l

    if method == "counting":
        if cyclic:
            return None
        if regular:
            return _regular(stats)
        return n_l * m_l + n_l * m_r
    if method == "extended_counting":
        # The [MPS] footnote quotes Θ(m × n³); our reconstruction caps
        # the fixpoint at n_L × n_R levels.
        if cyclic:
            return n_l * stats.n_r * (m_l + m_r)
        return predicted_cost("counting", stats)
    if method == "magic_set":
        return m_l + m_l * m_r
    if method == "henschen_naqvi":
        # Re-walks the R side per level: Σ_k k·m_R ≤ n_L² m_R.
        if cyclic:
            return None
        return m_l + n_l * n_l * m_r
    if method in ("mc_basic", "mc_basic_independent", "mc_basic_integrated"):
        if regular:
            return _regular(stats)
        return m_l + m_l * m_r
    if regular and method.startswith("mc_"):
        return _regular(stats)
    if method == "mc_single_independent":
        return m_l + (m_l - stats.m_j_hat) * m_r + stats.n_x * m_r
    if method == "mc_single_integrated":
        return m_l + (m_l - stats.m_x) * m_r + stats.n_x * m_r
    if method == "mc_multiple_independent":
        return m_l + (m_l - stats.m_i_hat) * m_r + stats.n_s * m_r
    if method == "mc_multiple_integrated":
        return m_l + (m_l - stats.m_s) * m_r + stats.n_s * m_r
    if method == "mc_recurring_independent":
        if not cyclic:
            return n_l * m_l + n_l * m_r
        return n_l * m_l + (m_l - stats.m_m_hat) * m_r + stats.n_m * m_r
    if method == "mc_recurring_integrated":
        if not cyclic:
            return n_l * m_l + n_l * m_r
        return n_l * m_l + (m_l - stats.m_m) * m_r + stats.n_m * m_r
    if method in ("mc_recurring_independent_scc", "mc_recurring_integrated_scc"):
        # Smarter Step 1: O(m_L + n_m × m_m) instead of n_L × m_L.
        step1 = m_l + stats.n_m * stats.m_m
        if not cyclic:
            return step1 + n_l * m_r
        magic_arcs = m_l - (
            stats.m_m if method.endswith("integrated_scc") else stats.m_m_hat
        )
        return step1 + magic_arcs * m_r + stats.n_m * m_r
    raise ValueError(f"unknown method {method!r}")


def table1_predictions(stats: GraphStatistics) -> Dict[str, Optional[int]]:
    """Predicted costs of Table 1 (counting vs. magic set)."""
    return {
        "counting": predicted_cost("counting", stats),
        "magic_set": predicted_cost("magic_set", stats),
    }


def all_method_predictions(stats: GraphStatistics) -> Dict[str, Optional[int]]:
    """Predicted costs for every method, Tables 1-5 combined."""
    methods = [
        "counting", "extended_counting", "magic_set", "mc_basic",
        "mc_single_independent", "mc_single_integrated",
        "mc_multiple_independent", "mc_multiple_integrated",
        "mc_recurring_independent", "mc_recurring_integrated",
    ]
    return {method: predicted_cost(method, stats) for method in methods}
