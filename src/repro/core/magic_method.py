"""The magic set method (Section 2), seminaive.

The magic set ``MS`` is the set of values L-reachable from the source::

    MS(a).
    MS(X1) :- MS(X), L(X, X1).

(the seminaive computation adds the ``not(MS(_, X1))`` guard — a value
enters the set once, which is exactly what makes the method safe on
cyclic graphs).  The modified rules then compute, for every magic value,
its full answer set::

    P_M(X, Y) :- MS(X), E(X, Y).
    P_M(X, Y) :- MS(X), L(X, X1), P_M(X1, Y1), R(Y, Y1).
    Answer(Y) :- P_M(a, Y).

The implementation drives the recursive rule *backwards* from each newly
derived ``P_M`` fact (a worklist seminaive fixpoint): a new ``P_M(X1,
Y1)`` joins with the ``L`` arcs entering ``X1`` (restricted to magic
values) and the ``R`` pairs whose second column is ``Y1``.  Each ``P_M``
fact is expanded exactly once, giving the Θ(m_L × m_R) behaviour of
Table 1.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from .cost import AnswerResult
from .csl import CSLInstance, CSLQuery


def compute_magic_set(instance: CSLInstance) -> Set[object]:
    """The seminaive ``MS`` fixpoint (each value expanded once)."""
    magic: Set[object] = {instance.source}
    frontier = [instance.source]
    while frontier:
        value = frontier.pop()
        for _b, successor in instance.left.lookup((value, None)):
            if successor not in magic:
                magic.add(successor)
                frontier.append(successor)
    return magic


def magic_fixpoint(
    instance: CSLInstance,
    magic: Set[object],
    exit_guard: Optional[Set[object]] = None,
    recursion_guard: Optional[Set[object]] = None,
) -> Dict[object, Set[object]]:
    """The ``P_M`` fixpoint over the modified rules.

    ``exit_guard`` restricts the exit rule (the paper's rule 3) and
    ``recursion_guard`` the recursive rule (rule 4); both default to the
    full ``magic`` set, which yields the plain magic set method.  The
    magic counting methods reuse this with ``RM`` in place of one or both
    guards (independent: exit ``RM`` / recursion ``MS``; integrated:
    ``RM`` for both).

    Returns ``P_M`` as ``{x: set of y}``.
    """
    if exit_guard is None:
        exit_guard = magic
    if recursion_guard is None:
        recursion_guard = magic
    pm: Dict[object, Set[object]] = {}
    worklist = []

    def derive(x, y) -> None:
        bucket = pm.setdefault(x, set())
        if y not in bucket:
            bucket.add(y)
            worklist.append((x, y))

    for x in exit_guard:
        for _x, y in instance.exit.lookup((x, None)):
            derive(x, y)

    # Nested-loop join, as the paper's cost model assumes: the R pairs
    # are re-retrieved for every qualifying L predecessor, which is what
    # makes the method Θ(m_L × m_R).  (A factored join would be cheaper;
    # the paper's analysis — and Table 1 — charges the product.)
    while worklist:
        x1, y1 = worklist.pop()
        for x, _x1 in instance.left.lookup((None, x1)):
            if x not in recursion_guard:
                continue
            for y, _y1 in instance.right.lookup((None, y1)):
                derive(x, y)
    return pm


def magic_set_method(query: CSLQuery, counter=None) -> AnswerResult:
    """Evaluate ``query`` with the pure magic set method (always safe)."""
    instance = query.instance(counter)
    magic = compute_magic_set(instance)
    pm = magic_fixpoint(instance, magic)
    answers = frozenset(pm.get(instance.source, set()))
    return AnswerResult(
        answers=answers,
        method="magic_set",
        cost=instance.counter,
        details={
            "magic_set_size": len(magic),
            "pm_facts": sum(len(v) for v in pm.values()),
        },
    )
