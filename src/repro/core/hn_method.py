"""The Henschen-Naqvi iterative method ([HN]), reconstructed.

Section 3 notes that in [BR]'s comparative study "the counting method
was shown to be more efficient than all other methods (including the
magic set method but excluding the [HN] method which is comparable
performance-wise)".  For the canonical query, Henschen-Naqvi's compiled
iterative expression is

    answer  =  ⋃_k  R⁻ᵏ( E( Lᵏ(a) ) )

evaluated level by level: walk the binding up ``k`` L-steps, across one
E-step, then back down ``k`` R-steps — for every ``k`` independently.

The crucial structural difference from the counting method: counting
*shares* the downward cascade across all levels (every ``P_C`` fact is
descended once), while [HN] re-walks the R side from scratch for each
``k``.  On shallow graphs the two are comparable (the [BR] result); on
deep graphs [HN] pays a quadratic Σ_k k·m_R — the ablation benchmark
makes this crossover visible.

Like the counting method, [HN] is unsafe on cyclic magic graphs; the
same divergence detection applies.
"""

from __future__ import annotations

from typing import Optional, Set

from ..errors import UnsafeQueryError
from .cost import AnswerResult
from .csl import CSLQuery


def hn_method(
    query: CSLQuery,
    counter=None,
    detect_divergence: bool = True,
    max_level: Optional[int] = None,
) -> AnswerResult:
    """Evaluate ``query`` with the iterative [HN] strategy.

    Raises :class:`UnsafeQueryError` on cyclic magic graphs unless a
    ``max_level`` truncation is forced.
    """
    instance = query.instance(counter)
    answers: Set[object] = set()
    frontier: Set[object] = {instance.source}
    seen: Set[object] = {instance.source}
    level = 0
    levels_processed = 0
    while frontier:
        # Across: E(frontier).
        current: Set[object] = set()
        for value in frontier:
            for _x, y in instance.exit.lookup((value, None)):
                current.add(y)
        # Down: R applied k times, recomputed from scratch at each level.
        for _ in range(level):
            if not current:
                break
            next_down: Set[object] = set()
            for y1 in current:
                for y, _y1 in instance.right.lookup((None, y1)):
                    next_down.add(y)
            current = next_down
        answers |= current
        levels_processed += 1

        # Up: L(frontier).
        if max_level is not None and level >= max_level:
            break
        next_frontier: Set[object] = set()
        for value in frontier:
            for _b, successor in instance.left.lookup((value, None)):
                next_frontier.add(successor)
                seen.add(successor)
        level += 1
        frontier = next_frontier
        if detect_divergence and max_level is None and level > len(seen):
            raise UnsafeQueryError(
                "the [HN] iterative method is unsafe: the magic graph is "
                f"cyclic (frontier alive at level {level} with only "
                f"{len(seen)} distinct values)"
            )
    return AnswerResult(
        answers=frozenset(answers),
        method="henschen_naqvi",
        cost=instance.counter,
        details={"levels": levels_processed},
    )
