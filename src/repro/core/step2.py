"""Step 2 of the magic counting methods: evaluating with RC and RM.

**Independent** (Section 4): the counting part and the magic part run
side by side and never exchange results ::

    P_C(J, Y)   :- RC(J, X), E(X, Y).              (1)
    P_C(J-1, Y) :- P_C(J, Y1), R(Y, Y1).           (2)
    P_M(X, Y)   :- RM(X), E(X, Y).                 (3)
    P_M(X, Y)   :- MS(X), L(X, X1), P_M(X1, Y1), R(Y, Y1).   (4)
    Answer(Y)   :- P_C(0, Y).                      (5)
    Answer(Y)   :- P_M(a, Y).                      (6)

Note rule 4 ranges over the *full* magic set — the magic part must carry
its answers all the way down to the source on its own.

**Integrated** (Section 5): the magic part is confined to RM and its
results are transferred into the counting part at the RC/RM frontier ::

    P_M(X, Y)   :- RM(X), E(X, Y).                 (1)
    P_M(X, Y)   :- RM(X), L(X, X1), P_M(X1, Y1), R(Y, Y1).   (2)
    P_C(J, Y)   :- RC(J, X), L(X, X1), P_M(X1, Y1), R(Y, Y1). (3)
    P_C(J, Y)   :- RC(J, X), E(X, Y).              (4)
    P_C(J-1, Y) :- P_C(J, Y1), R(Y, Y1).           (5)
    Answer(Y)   :- P_C(0, Y).                      (6)

(Rule 3 is printed slightly garbled in the paper; see the OCR note in
DESIGN.md for why this is the evidently intended reading.)  Because the
magic part runs first, rule 3 acts as an extra exit rule for the
counting part.  Correctness requires ``(0, a) ∈ RC`` (Theorem 2).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .csl import CSLInstance
from .counting_method import descend_answers
from .magic_method import magic_fixpoint
from .reduced_sets import ReducedSets


def _seed_exit_from_rc(
    instance: CSLInstance, rc: Set[Tuple[int, object]]
) -> Dict[int, Set[object]]:
    """Rule ``P_C(J, Y) :- RC(J, X), E(X, Y)``."""
    pc_levels: Dict[int, Set[object]] = {}
    for index, value in rc:
        for _x, y in instance.exit.lookup((value, None)):
            pc_levels.setdefault(index, set()).add(y)
    return pc_levels


def independent_step2(instance: CSLInstance, reduced: ReducedSets):
    """Run the independent modified rules; returns (answers, details)."""
    # Counting part: rules 1, 2, 5.
    pc_levels = _seed_exit_from_rc(instance, reduced.rc)
    counting_answers = descend_answers(instance, pc_levels)

    # Magic part: rules 3, 4, 6 — exit restricted to RM, recursion over MS.
    pm = magic_fixpoint(
        instance,
        magic=reduced.ms,
        exit_guard=reduced.rm,
        recursion_guard=reduced.ms,
    )
    magic_answers = pm.get(instance.source, set())

    details = {
        "counting_answers": len(counting_answers),
        "magic_answers": len(magic_answers),
        "pm_facts": sum(len(v) for v in pm.values()),
    }
    return set(counting_answers) | set(magic_answers), details


def integrated_step2(instance: CSLInstance, reduced: ReducedSets):
    """Run the integrated modified rules; returns (answers, details).

    The caller must have ensured ``(0, a) ∈ RC`` (Theorem 2 condition c);
    :meth:`ReducedSets.ensure_source_pair` does that.
    """
    # Magic part first: rules 1, 2 confined to RM.
    pm = magic_fixpoint(
        instance,
        magic=reduced.ms,
        exit_guard=reduced.rm,
        recursion_guard=reduced.rm,
    )

    # Counting part: rule 4 seeds from E ...
    pc_levels = _seed_exit_from_rc(instance, reduced.rc)

    # ... and rule 3 transfers the magic part's results across the
    # frontier: driven from each P_M fact, through the L arcs entering
    # its node, into the indices RC holds for the predecessor.
    rc_by_value: Dict[object, List[int]] = {}
    for index, value in reduced.rc:
        rc_by_value.setdefault(value, []).append(index)
    transferred = 0
    for x1, ys in pm.items():
        for y1 in ys:
            for x, _x1 in instance.left.lookup((None, x1)):
                indices = rc_by_value.get(x)
                if not indices:
                    continue
                for y, _y1 in instance.right.lookup((None, y1)):
                    for index in indices:
                        bucket = pc_levels.setdefault(index, set())
                        if y not in bucket:
                            bucket.add(y)
                            transferred += 1

    # Rules 5 and 6.
    answers = descend_answers(instance, pc_levels)
    details = {
        "pm_facts": sum(len(v) for v in pm.values()),
        "transferred": transferred,
    }
    return set(answers), details
