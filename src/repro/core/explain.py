"""EXPLAIN for the magic counting optimizer.

:func:`explain_evaluation` produces the narrative a database EXPLAIN
would: the magic-graph diagnosis, the counting-set levels (when finite),
every strategy's RC/RM split with predicted costs, and the method a
planner would pick — all as plain text, used by the REPL's ``.plan``
command and handy in notebooks.
"""

from __future__ import annotations

from typing import List, Optional

from .classification import classify_nodes
from .complexity import all_method_predictions, compute_statistics
from .counting_method import compute_counting_set
from .csl import CSLQuery
from .reduced_sets import Strategy
from .solver import adaptive_solve
from .step1 import compute_reduced_sets


def _format_values(values, limit: int = 8) -> str:
    ordered = sorted(values, key=repr)
    shown = ", ".join(str(v) for v in ordered[:limit])
    if len(ordered) > limit:
        shown += f", … (+{len(ordered) - limit})"
    return "{" + shown + "}"


def explain_evaluation(query: CSLQuery, max_level_rows: int = 12) -> str:
    """A textual evaluation plan for ``query``."""
    classification = classify_nodes(query)
    stats = compute_statistics(query)
    lines: List[str] = []

    lines.append("== magic graph ==")
    lines.append(
        f"class: {classification.graph_class.value}   "
        f"n_L={stats.n_l} m_L={stats.m_l}  n_R={stats.n_r} m_R={stats.m_r}  "
        f"m_E={stats.m_e}"
    )
    lines.append(
        f"nodes: {len(classification.single)} single, "
        f"{len(classification.multiple)} multiple, "
        f"{len(classification.recurring)} recurring   (i_x = {stats.i_x})"
    )
    if classification.multiple:
        lines.append(f"multiple:  {_format_values(classification.multiple)}")
    if classification.recurring:
        lines.append(f"recurring: {_format_values(classification.recurring)}")
    lines.append("")

    lines.append("== counting set ==")
    if classification.is_cyclic:
        lines.append(
            "cyclic magic graph: the counting set is infinite — the pure "
            "counting method is UNSAFE here."
        )
    else:
        levels = compute_counting_set(query.instance())
        for index in sorted(levels)[:max_level_rows]:
            lines.append(f"CS[{index}] = {_format_values(levels[index])}")
        if len(levels) > max_level_rows:
            lines.append(f"… ({len(levels) - max_level_rows} more levels)")
    lines.append("")

    lines.append("== reduced sets per strategy ==")
    for strategy in Strategy:
        reduced = compute_reduced_sets(query.instance(), strategy)
        lines.append(
            f"{strategy.value:9s}: |RC| = {len(reduced.rc):4d}  "
            f"RM = {_format_values(reduced.rm, limit=6)}"
        )
    lines.append("")

    lines.append("== predicted costs (tuple retrievals) ==")
    for method, predicted in all_method_predictions(stats).items():
        cell = "unsafe" if predicted is None else str(predicted)
        lines.append(f"{method:26s} {cell}")
    lines.append("")

    chosen = adaptive_solve(query)
    lines.append(
        f"== plan ==\nadaptive choice: {chosen.method}  "
        f"({len(chosen.answers)} answer(s), {chosen.cost.retrievals} "
        "retrievals when executed)"
    )
    return "\n".join(lines)
