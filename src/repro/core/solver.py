"""Top-level entry points: solve a CSL query with any method.

``solve`` is the public one-call API.  Two independent oracles back the
test suite:

* :func:`naive_answer` — builds the original (unrewritten) Datalog
  program and runs the naive bottom-up engine of
  :mod:`repro.datalog.evaluation`;
* :func:`fact2_answer` — a direct implementation of the paper's Fact 2
  (graph characterization of the answer) as a product-graph reachability
  sweep, sharing no code with the engines it validates.
"""

from __future__ import annotations

from typing import Optional

from ..errors import EvaluationError
from .cost import AnswerResult
from .csl import CSLQuery
from .counting_method import counting_method, extended_counting_method
from .hn_method import hn_method
from .magic_method import magic_set_method
from .methods import magic_counting
from .reduced_sets import Mode, Strategy

_NAMED_METHODS = {
    "counting": counting_method,
    "extended_counting": extended_counting_method,
    "magic_set": magic_set_method,
    "henschen_naqvi": hn_method,
}


def solve(
    query: CSLQuery,
    method: str = "auto",
    strategy: Optional[Strategy] = None,
    mode: Optional[Mode] = None,
    counter=None,
) -> AnswerResult:
    """Answer a CSL query.

    ``method`` selects the algorithm:

    * ``"auto"`` (default) — the integrated recurring magic counting
      method with the linear-time SCC Step 1: always safe, coincides
      with the counting method on regular graphs, and sits at the top of
      the paper's efficiency hierarchy (Figure 3);
    * ``"counting"`` — the pure counting method (raises
      :class:`UnsafeQueryError` on cyclic magic graphs);
    * ``"extended_counting"`` — the cyclic-safe [MPS] extension;
    * ``"magic_set"`` — the pure magic set method;
    * ``"magic_counting"`` — the method selected by ``strategy``/``mode``
      (defaults: MULTIPLE, INTEGRATED);
    * ``"naive"`` — the reference oracle (no binding propagation at all).
    """
    if method == "auto":
        return magic_counting(
            query,
            strategy=Strategy.RECURRING,
            mode=Mode.INTEGRATED,
            counter=counter,
            scc_step1=True,
        )
    if method == "adaptive":
        return adaptive_solve(query, counter=counter)
    if method == "magic_counting":
        return magic_counting(
            query,
            strategy=strategy or Strategy.MULTIPLE,
            mode=mode or Mode.INTEGRATED,
            counter=counter,
        )
    if method == "naive":
        return naive_answer(query, counter=counter)
    runner = _NAMED_METHODS.get(method)
    if runner is None:
        raise EvaluationError(f"unknown method {method!r}")
    return runner(query, counter=counter)


def solve_program(program, database, method: str = "auto",
                  strategy: Optional[Strategy] = None,
                  mode: Optional[Mode] = None) -> AnswerResult:
    """One call from a Datalog program + database to answers.

    Recognizes the CSL shape (materializing derived ``L``/``E``/``R``
    parts), then dispatches to :func:`solve`.  Raises
    :class:`~repro.errors.NotCSLError` when the program is outside the
    class — fall back to :func:`repro.datalog.answer_tuples` there.
    """
    query = CSLQuery.from_program(program, database=database)
    return solve(query, method=method, strategy=strategy, mode=mode)


def adaptive_solve(
    query: CSLQuery, counter=None, cost_bounds: bool = False
) -> AnswerResult:
    """Pick the method by a cheap pre-classification of the magic graph.

    One linear SCC pass (uncharged — it is compile-time analysis)
    decides the regime; the regime-to-method mapping is
    :func:`repro.core.methods.recommended_plan`, shared with the static
    method-admissibility advisory so the analyzer's recommendation and
    the solver's behaviour can never drift apart.

    With ``cost_bounds=True`` the cost analyzer
    (:mod:`repro.analysis.cost`) additionally certifies a retrieval
    bound per method and the smallest certified bound wins the
    ranking (ties and abstentions fall back to the regime heuristic).
    The chosen plan's provenance, certified bound, and the full ranked
    table land in the result's ``details["plan"]``.
    """
    from .classification import classify_nodes
    from .methods import recommended_plan

    classification = classify_nodes(query)
    certificate = None
    if cost_bounds:
        from ..analysis.cost import certify_cost

        certificate = certify_cost(query)
    recommendation = recommended_plan(
        classification, cost_certificate=certificate
    )
    name, strategy, mode, scc_step1 = recommendation
    if name == "counting":
        result = counting_method(query, counter=counter)
    elif name in _NAMED_METHODS:
        result = _NAMED_METHODS[name](query, counter=counter)
    else:
        result = magic_counting(
            query, strategy, mode, counter=counter, scc_step1=scc_step1
        )
    if cost_bounds:
        result.details["plan"] = {
            "provenance": recommendation.provenance,
            "bound": None
            if certificate is None
            else certificate.bound_for(name),
            "ranking": recommendation.details.get("ranking"),
        }
    return result


def _fact_count(database, name: str) -> int:
    """Row count of a relation without materializing its tuple set
    (columnar relations decode on materialization; a count is free)."""
    return len(database.relation(name)) if database.has_relation(name) else 0


def naive_answer(query: CSLQuery, counter=None) -> AnswerResult:
    """Reference oracle: naive bottom-up evaluation of the original
    program (computes the whole of ``P`` and selects ``P(a, ·)``)."""
    from ..datalog.evaluation import answer_tuples
    from ..datalog.relation import CostCounter

    program = query.to_program()
    database = query.database(counter if counter is not None else CostCounter())
    tuples = answer_tuples(program, database, engine="naive")
    return AnswerResult(
        answers=frozenset(value for (value,) in tuples),
        method="naive",
        cost=database.counter,
        details={"p_facts": _fact_count(database, "p")},
    )


def seminaive_answer(
    query: CSLQuery, counter=None, engine: str = "seminaive"
) -> AnswerResult:
    """Second oracle: semi-naive evaluation of the original program.

    ``engine`` is forwarded to :func:`repro.datalog.answer_tuples`:
    ``"seminaive"`` (the compiled default), or explicitly ``"compiled"``
    / ``"interpreted"`` for differential engine testing.
    """
    from ..datalog.evaluation import answer_tuples
    from ..datalog.relation import CostCounter

    program = query.to_program()
    database = query.database(counter if counter is not None else CostCounter())
    tuples = answer_tuples(program, database, engine=engine)
    return AnswerResult(
        answers=frozenset(value for (value,) in tuples),
        method="seminaive" if engine == "seminaive" else f"seminaive_{engine}",
        cost=database.counter,
        details={"p_facts": _fact_count(database, "p")},
    )


def fact2_answer(query: CSLQuery) -> frozenset:
    """Direct implementation of Fact 2, as an independent oracle.

    A value ``b0`` is an answer iff there is a path from the source made
    of exactly ``k`` L-arcs, one E-arc, and ``k`` (reversed) R-arcs.
    Equivalently: the pair ``(a, b0)`` is reachable in the product
    construction that walks L backwards and R backwards simultaneously
    from each E pair.  Terminates on every input (the pair space is
    finite) and shares no code with the engines under test.
    """
    left_in = {}
    for b, c in query.left:
        left_in.setdefault(c, set()).add(b)
    right_pairs_by_second = {}
    for y, y1 in query.right:
        right_pairs_by_second.setdefault(y1, set()).add(y)

    magic = query.magic_set()
    seen = set()
    stack = []
    for b, c in query.exit:
        if b in magic:
            pair = (b, c)
            if pair not in seen:
                seen.add(pair)
                stack.append(pair)
    while stack:
        x1, y1 = stack.pop()
        for x in left_in.get(x1, ()):
            if x not in magic:
                continue
            for y in right_pairs_by_second.get(y1, ()):
                pair = (x, y)
                if pair not in seen:
                    seen.add(pair)
                    stack.append(pair)
    return frozenset(y for (x, y) in seen if x == query.source)
