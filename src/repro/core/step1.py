"""Step 1 of the magic counting methods: computing RC and RM.

Four strategies (Sections 6-9), each trading detection effort for a
finer split of the magic set:

* **basic** — detect whether the magic graph is regular; all-or-nothing.
* **single** — find the frontier index ``i_x`` below which every node is
  single; count below it, magic above it.
* **multiple** — classify every node; count the single ones, magic the
  rest.  (First and second occurrences both generate, so multiplicity
  propagates; a node never acquires a third tuple, which bounds the
  fixpoint even on cyclic graphs.)
* **recurring** — count single *and* multiple nodes (with all their
  indices), magic only the truly recurring ones.  The paper's naive
  Step 1 runs the unbounded counting fixpoint up to level ``2K - 1``
  (any longer walk must contain a cycle); the "smarter" variant it
  sketches detects recurring nodes in linear time with Tarjan's SCC
  algorithm and propagates index sets only through the non-recurring
  DAG — :func:`recurring_step1_scc`.

Every function reads the ``L`` relation through the charged lookup
interface, so Step-1 costs land in the same counter as Step 2.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..datalog.stratify import strongly_connected_components
from .csl import CSLInstance
from .reduced_sets import ReducedSets, Strategy


def _basic_fixpoint(instance: CSLInstance):
    """The Section-6 fixpoint: only first occurrences generate.

    Returns ``(first, duplicated)`` where ``first`` maps each magic value
    to its first (shortest) index and ``duplicated`` is the set of values
    re-derived at a later level (proof of non-regularity).
    """
    first: Dict[object, int] = {instance.source: 0}
    duplicated: Set[object] = set()
    frontier = [instance.source]
    level = 0
    while frontier:
        level += 1
        next_frontier: List[object] = []
        for value in frontier:
            for _b, successor in instance.left.lookup((value, None)):
                if successor in first:
                    if first[successor] != level:
                        duplicated.add(successor)
                else:
                    first[successor] = level
                    next_frontier.append(successor)
        frontier = next_frontier
    return first, duplicated


def basic_step1(instance: CSLInstance) -> ReducedSets:
    """Basic method: counting everywhere, or magic everywhere."""
    first, duplicated = _basic_fixpoint(instance)
    ms = set(first)
    if not duplicated:
        rc = {(index, value) for value, index in first.items()}
        return ReducedSets(
            rc=rc, rm=set(), ms=ms, strategy=Strategy.BASIC,
            details={"regular": True},
        )
    return ReducedSets(
        rc=set(), rm=set(ms), ms=ms, strategy=Strategy.BASIC,
        details={"regular": False},
    )


def single_step1(instance: CSLInstance) -> ReducedSets:
    """Single method: split at the frontier index ``i_x``.

    ``i_x`` is the smallest first-index of a node the fixpoint re-derived
    at a later level.  Every node strictly below ``i_x`` is single (the
    minimal non-single node is always detected — see the proof sketch in
    tests/test_step1.py), so its unique index is its first index.
    """
    first, duplicated = _basic_fixpoint(instance)
    ms = set(first)
    if not duplicated:
        rc = {(index, value) for value, index in first.items()}
        return ReducedSets(
            rc=rc, rm=set(), ms=ms, strategy=Strategy.SINGLE,
            details={"regular": True, "i_x": max(first.values(), default=0) + 1},
        )
    boundary = min(first[value] for value in duplicated)
    rc = {(index, value) for value, index in first.items() if index < boundary}
    rm = {value for value, index in first.items() if index >= boundary}
    return ReducedSets(
        rc=rc, rm=rm, ms=ms, strategy=Strategy.SINGLE,
        details={"regular": False, "i_x": boundary},
    )


def multiple_step1(instance: CSLInstance) -> ReducedSets:
    """Multiple method: per-node single/non-single classification.

    The Section-8 fixpoint lets first *and* second occurrences generate
    but never creates a third tuple for a node (the ``not(MS(_, 2, X1))``
    guard), so it terminates on every graph in O(m_L) retrievals while
    propagating multiplicity downstream.
    """
    first: Dict[object, int] = {instance.source: 0}
    second: Dict[object, int] = {}
    frontier: Set[object] = {instance.source}
    level = 0
    while frontier:
        level += 1
        next_frontier: Set[object] = set()
        for value in frontier:
            for _b, successor in instance.left.lookup((value, None)):
                if successor in second:
                    continue  # the not(MS(_, 2, X1)) guard
                if successor in first:
                    if first[successor] == level:
                        continue  # same-level re-derivation: one tuple
                    second[successor] = level
                    next_frontier.add(successor)
                else:
                    first[successor] = level
                    next_frontier.add(successor)
        frontier = next_frontier
    ms = set(first)
    rm = set(second)
    rc = {(index, value) for value, index in first.items() if value not in rm}
    return ReducedSets(
        rc=rc, rm=rm, ms=ms, strategy=Strategy.MULTIPLE,
        details={"regular": not rm, "single_nodes": len(ms) - len(rm)},
    )


def recurring_step1(instance: CSLInstance) -> ReducedSets:
    """Recurring method, naive Step 1 (Section 9).

    Runs the unbounded counting fixpoint while ``I < 2K - 1`` (``K`` =
    values seen so far): a walk of length ``≥ K`` must traverse a cycle,
    and every recurring node is guaranteed to collect such a witness
    index before level ``2K - 1``.  Θ(n_L × m_L) retrievals.
    """
    indices: Dict[object, Set[int]] = {instance.source: {0}}
    frontier: Set[object] = {instance.source}
    level = 0
    while frontier and level < 2 * len(indices) - 1:
        next_frontier: Set[object] = set()
        for value in frontier:
            for _b, successor in instance.left.lookup((value, None)):
                bucket = indices.setdefault(successor, set())
                if level + 1 not in bucket:
                    bucket.add(level + 1)
                    next_frontier.add(successor)
        level += 1
        frontier = next_frontier
    cardinality = len(indices)
    rm = {value for value, bucket in indices.items() if max(bucket) >= cardinality}
    rc = {
        (index, value)
        for value, bucket in indices.items()
        if value not in rm
        for index in bucket
    }
    return ReducedSets(
        rc=rc, rm=rm, ms=set(indices), strategy=Strategy.RECURRING,
        details={"regular": not rm and all(len(b) == 1 for b in indices.values()),
                 "variant": "fixpoint", "levels": level},
    )


def recurring_step1_scc(instance: CSLInstance) -> ReducedSets:
    """Recurring method, "smarter" Step 1 (the O(m_L + n_m × m_m)
    implementation the paper sketches via [Tar]).

    1. one charged traversal loads the reachable ``L`` adjacency (m_L);
    2. Tarjan SCC finds the cyclic cores; their forward closure is the
       recurring set (linear, in memory);
    3. exact index sets for the non-recurring nodes are propagated
       through the residual DAG, re-probing ``L`` once per (node, index)
       pair — Θ(Σ|I_b| · outdeg) = O(n_m × m_m) retrievals.
    """
    adjacency: Dict[object, List[object]] = {}
    order: List[object] = []
    stack = [instance.source]
    seen = {instance.source}
    while stack:
        value = stack.pop()
        order.append(value)
        successors = [s for _b, s in instance.left.lookup((value, None))]
        adjacency[value] = successors
        for successor in successors:
            if successor not in seen:
                seen.add(successor)
                stack.append(successor)

    successor_sets = {value: set(successors) for value, successors in adjacency.items()}
    components = strongly_connected_components(
        sorted(seen, key=repr), successor_sets
    )
    cores: Set[object] = set()
    for component in components:
        if len(component) > 1:
            cores.update(component)
        elif component[0] in successor_sets[component[0]]:
            cores.add(component[0])
    recurring = set(cores)
    stack = list(cores)
    while stack:
        value = stack.pop()
        for successor in successor_sets[value]:
            if successor not in recurring:
                recurring.add(successor)
                stack.append(successor)

    # Index-set propagation over the non-recurring DAG.  Tarjan's output
    # order is reverse-topological w.r.t. the successor direction, so
    # iterate it backwards to visit sources first.
    finite_nodes = seen - recurring
    indices: Dict[object, Set[int]] = {value: set() for value in finite_nodes}
    if instance.source in indices:
        indices[instance.source].add(0)
    for component in reversed(components):
        value = component[0]
        if value not in finite_nodes:
            continue
        for index in sorted(indices[value]):
            # One charged probe per (node, index) pair: the smarter
            # implementation still pays n_m × m_m for multiple nodes.
            for _b, successor in instance.left.lookup((value, None)):
                if successor in indices:
                    indices[successor].add(index + 1)

    rm = set(recurring)
    rc = {
        (index, value)
        for value, bucket in indices.items()
        for index in bucket
    }
    return ReducedSets(
        rc=rc, rm=rm, ms=set(seen), strategy=Strategy.RECURRING,
        details={"regular": not rm and all(len(b) == 1 for b in indices.values()),
                 "variant": "scc"},
    )


_STEP1_DISPATCH = {
    Strategy.BASIC: basic_step1,
    Strategy.SINGLE: single_step1,
    Strategy.MULTIPLE: multiple_step1,
    Strategy.RECURRING: recurring_step1,
}


def compute_reduced_sets(
    instance: CSLInstance,
    strategy: Strategy,
    scc_variant: bool = False,
) -> ReducedSets:
    """Dispatch to the requested Step-1 strategy.

    ``scc_variant`` selects the smarter recurring implementation (only
    meaningful for :attr:`Strategy.RECURRING`).
    """
    if strategy is Strategy.RECURRING and scc_variant:
        return recurring_step1_scc(instance)
    return _STEP1_DISPATCH[strategy](instance)
