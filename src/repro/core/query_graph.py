"""Query graphs (Section 3 of the paper).

Given a CSL query instance, the query graph ``G_Q`` is the subgraph — of
the graph ``G`` built from the ``L``, ``E`` and ``R`` relations — induced
by the nodes reachable from the source constant ``a``:

* **L-nodes** and **R-nodes** are distinct even when they carry the same
  value (the paper labels them; we keep two separate node sets);
* ``G_L`` (the *magic graph*): one arc ``(b, c)`` per pair ``(b, c) ∈ L``
  between reachable L-nodes — its node set is exactly the magic set;
* ``G_E``: one arc from L-node ``b`` to R-node ``c`` per usable pair
  ``(b, c) ∈ E``;
* ``G_R``: one **reversed** arc ``(c, b)`` per pair ``(b, c) ∈ R``.

This module builds the graph *unchar­ged* (it is an analysis artefact,
not a database computation) directly from the raw pair sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set

from .csl import CSLQuery, Pair


@dataclass
class QueryGraph:
    """The query graph ``G_Q = G_L ∪ G_E ∪ G_R`` of a CSL instance."""

    source: object
    l_nodes: Set[object] = field(default_factory=set)
    r_nodes: Set[object] = field(default_factory=set)
    l_arcs: Set[Pair] = field(default_factory=set)
    e_arcs: Set[Pair] = field(default_factory=set)
    r_arcs: Set[Pair] = field(default_factory=set)

    # --- derived counts (the paper's n / m quantities) -------------------

    @property
    def n_l(self) -> int:
        return len(self.l_nodes)

    @property
    def n_r(self) -> int:
        return len(self.r_nodes)

    @property
    def n(self) -> int:
        return self.n_l + self.n_r

    @property
    def m_l(self) -> int:
        return len(self.l_arcs)

    @property
    def m_e(self) -> int:
        return len(self.e_arcs)

    @property
    def m_r(self) -> int:
        return len(self.r_arcs)

    @property
    def m(self) -> int:
        return self.m_l + self.m_e + self.m_r

    @property
    def magic_set(self) -> Set[object]:
        """``MS = N_L`` (Proposition 1)."""
        return self.l_nodes

    def l_successors(self) -> Dict[object, Set[object]]:
        adjacency: Dict[object, Set[object]] = {b: set() for b in self.l_nodes}
        for b, c in self.l_arcs:
            adjacency[b].add(c)
        return adjacency

    def l_predecessors(self) -> Dict[object, Set[object]]:
        adjacency: Dict[object, Set[object]] = {b: set() for b in self.l_nodes}
        for b, c in self.l_arcs:
            adjacency[c].add(b)
        return adjacency

    def r_successors(self) -> Dict[object, Set[object]]:
        """Adjacency of G_R in graph orientation (arc (c, b) per (b, c) ∈ R)."""
        adjacency: Dict[object, Set[object]] = {c: set() for c in self.r_nodes}
        for from_node, to_node in self.r_arcs:
            adjacency[from_node].add(to_node)
        return adjacency

    def __repr__(self):
        return (
            f"QueryGraph(source={self.source!r}, n_L={self.n_l}, m_L={self.m_l}, "
            f"n_R={self.n_r}, m_R={self.m_r}, m_E={self.m_e})"
        )


def build_query_graph(query: CSLQuery) -> QueryGraph:
    """Construct ``G_Q`` by reachability from the source.

    Following the note in DESIGN.md, an ``E`` pair ``(b, c)`` whose target
    ``c`` never occurs in ``R`` still contributes an R-node (with no
    outgoing ``G_R`` arcs) so the graph semantics exactly matches the
    Datalog semantics.
    """
    graph = QueryGraph(source=query.source)

    # --- L side: BFS/DFS over L from the source --------------------------
    l_adjacency: Dict[object, Set[object]] = {}
    for b, c in query.left:
        l_adjacency.setdefault(b, set()).add(c)
    graph.l_nodes.add(query.source)
    stack = [query.source]
    while stack:
        node = stack.pop()
        for successor in l_adjacency.get(node, ()):
            graph.l_arcs.add((node, successor))
            if successor not in graph.l_nodes:
                graph.l_nodes.add(successor)
                stack.append(successor)

    # --- E arcs from reachable L-nodes -----------------------------------
    e_by_source: Dict[object, Set[object]] = {}
    for b, c in query.exit:
        e_by_source.setdefault(b, set()).add(c)
    e_targets: Set[object] = set()
    for b in graph.l_nodes:
        for c in e_by_source.get(b, ()):
            graph.e_arcs.add((b, c))
            e_targets.add(c)

    # --- R side: graph arcs are reversed R pairs; BFS from E targets ------
    r_adjacency: Dict[object, Set[object]] = {}
    for b, c in query.right:
        # pair (b, c) in R gives arc (c, b)
        r_adjacency.setdefault(c, set()).add(b)
    graph.r_nodes.update(e_targets)
    stack = list(e_targets)
    while stack:
        node = stack.pop()
        for successor in r_adjacency.get(node, ()):
            graph.r_arcs.add((node, successor))
            if successor not in graph.r_nodes:
                graph.r_nodes.add(successor)
                stack.append(successor)

    return graph
