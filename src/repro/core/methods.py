"""The eight magic counting methods: Strategy × Mode dispatch.

``magic_counting(query, strategy, mode)`` runs Step 1 (the chosen
reduced-set computation) followed by Step 2 (independent or integrated
modified rules) over one cost counter, and returns an
:class:`AnswerResult` whose ``details`` expose the reduced sets and the
per-step diagnostics.  All eight methods are safe on every input
(Proposition 3 — every Step-1 fixpoint terminates by construction).
"""

from __future__ import annotations


from .cost import AnswerResult
from .csl import CSLQuery
from .reduced_sets import Mode, Strategy
from .step1 import compute_reduced_sets
from .step2 import independent_step2, integrated_step2


def method_name(strategy: Strategy, mode: Mode, scc_step1: bool = False) -> str:
    suffix = "_scc" if scc_step1 else ""
    return f"mc_{strategy.value}_{mode.value}{suffix}"


def magic_counting(
    query: CSLQuery,
    strategy: Strategy = Strategy.MULTIPLE,
    mode: Mode = Mode.INTEGRATED,
    counter=None,
    scc_step1: bool = False,
    verify_conditions: bool = False,
) -> AnswerResult:
    """Evaluate ``query`` with the selected magic counting method.

    Parameters
    ----------
    strategy:
        How Step 1 splits the magic set (BASIC, SINGLE, MULTIPLE,
        RECURRING) — Sections 6-9.
    mode:
        INDEPENDENT or INTEGRATED cooperation — Sections 4-5.
    scc_step1:
        Use the linear-time SCC implementation of the recurring Step 1
        (only meaningful with ``Strategy.RECURRING``).
    verify_conditions:
        Debug mode: after Step 1, check the Theorem 1 / Theorem 2
        correctness conditions against a ground-truth classification and
        raise :class:`~repro.errors.MethodConditionError` on violation.
        Costs an extra pass over the graph; off by default.
    """
    instance = query.instance(counter)
    reduced = compute_reduced_sets(instance, strategy, scc_variant=scc_step1)
    step1_retrievals = instance.counter.retrievals
    if mode is Mode.INTEGRATED:
        reduced.ensure_source_pair(instance.source)
    if verify_conditions:
        from .classification import classify_nodes
        from .reduced_sets import check_theorem1, check_theorem2

        classification = classify_nodes(query)
        if mode is Mode.INTEGRATED:
            check_theorem2(reduced, classification, instance.source)
        else:
            check_theorem1(reduced, classification, instance.source)
    if mode is Mode.INTEGRATED:
        answers, step2_details = integrated_step2(instance, reduced)
    else:
        answers, step2_details = independent_step2(instance, reduced)
    details = {
        "strategy": strategy.value,
        "mode": mode.value,
        "rc_size": len(reduced.rc),
        "rm_size": len(reduced.rm),
        "ms_size": len(reduced.ms),
        "reduced_sets": reduced,
        "step1_retrievals": step1_retrievals,
        "step2_retrievals": instance.counter.retrievals - step1_retrievals,
    }
    details.update(step2_details)
    return AnswerResult(
        answers=frozenset(answers),
        method=method_name(strategy, mode, scc_step1),
        cost=instance.counter,
        details=details,
    )


def all_method_coordinates():
    """The eight (strategy, mode) pairs, in the paper's order."""
    return [
        (strategy, mode)
        for strategy in (
            Strategy.BASIC,
            Strategy.SINGLE,
            Strategy.MULTIPLE,
            Strategy.RECURRING,
        )
        for mode in (Mode.INDEPENDENT, Mode.INTEGRATED)
    ]


def recommended_plan(classification):
    """The selection policy, by magic-graph regime.

    Returns ``(method_name, strategy, mode, scc_step1)``; ``strategy``
    and ``mode`` are None for the pure counting method.  This is the
    single source of truth shared by :func:`repro.core.solver.
    adaptive_solve` and the static method-admissibility advisory:

    * **regular** — the pure counting method (unbeatable there);
    * **acyclic non-regular** — the integrated multiple method (best
      measured all-rounder without the recurring Step-1 overhead,
      which buys nothing when no node is recurring);
    * **cyclic** — the integrated recurring method with the
      linear-time SCC Step 1.
    """
    if classification.is_regular:
        return ("counting", None, None, False)
    if not classification.is_cyclic:
        return (
            method_name(Strategy.MULTIPLE, Mode.INTEGRATED),
            Strategy.MULTIPLE,
            Mode.INTEGRATED,
            False,
        )
    return (
        method_name(Strategy.RECURRING, Mode.INTEGRATED, scc_step1=True),
        Strategy.RECURRING,
        Mode.INTEGRATED,
        True,
    )
