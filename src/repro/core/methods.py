"""The eight magic counting methods: Strategy × Mode dispatch.

``magic_counting(query, strategy, mode)`` runs Step 1 (the chosen
reduced-set computation) followed by Step 2 (independent or integrated
modified rules) over one cost counter, and returns an
:class:`AnswerResult` whose ``details`` expose the reduced sets and the
per-step diagnostics.  All eight methods are safe on every input
(Proposition 3 — every Step-1 fixpoint terminates by construction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .cost import AnswerResult
from .csl import CSLQuery
from .reduced_sets import Mode, Strategy
from .step1 import compute_reduced_sets
from .step2 import independent_step2, integrated_step2


def method_name(strategy: Strategy, mode: Mode, scc_step1: bool = False) -> str:
    suffix = "_scc" if scc_step1 else ""
    return f"mc_{strategy.value}_{mode.value}{suffix}"


def magic_counting(
    query: CSLQuery,
    strategy: Strategy = Strategy.MULTIPLE,
    mode: Mode = Mode.INTEGRATED,
    counter=None,
    scc_step1: bool = False,
    verify_conditions: bool = False,
) -> AnswerResult:
    """Evaluate ``query`` with the selected magic counting method.

    Parameters
    ----------
    strategy:
        How Step 1 splits the magic set (BASIC, SINGLE, MULTIPLE,
        RECURRING) — Sections 6-9.
    mode:
        INDEPENDENT or INTEGRATED cooperation — Sections 4-5.
    scc_step1:
        Use the linear-time SCC implementation of the recurring Step 1
        (only meaningful with ``Strategy.RECURRING``).
    verify_conditions:
        Debug mode: after Step 1, check the Theorem 1 / Theorem 2
        correctness conditions against a ground-truth classification and
        raise :class:`~repro.errors.MethodConditionError` on violation.
        Costs an extra pass over the graph; off by default.
    """
    instance = query.instance(counter)
    reduced = compute_reduced_sets(instance, strategy, scc_variant=scc_step1)
    step1_retrievals = instance.counter.retrievals
    if mode is Mode.INTEGRATED:
        reduced.ensure_source_pair(instance.source)
    if verify_conditions:
        from .classification import classify_nodes
        from .reduced_sets import check_theorem1, check_theorem2

        classification = classify_nodes(query)
        if mode is Mode.INTEGRATED:
            check_theorem2(reduced, classification, instance.source)
        else:
            check_theorem1(reduced, classification, instance.source)
    if mode is Mode.INTEGRATED:
        answers, step2_details = integrated_step2(instance, reduced)
    else:
        answers, step2_details = independent_step2(instance, reduced)
    details = {
        "strategy": strategy.value,
        "mode": mode.value,
        "rc_size": len(reduced.rc),
        "rm_size": len(reduced.rm),
        "ms_size": len(reduced.ms),
        "reduced_sets": reduced,
        "step1_retrievals": step1_retrievals,
        "step2_retrievals": instance.counter.retrievals - step1_retrievals,
    }
    details.update(step2_details)
    return AnswerResult(
        answers=frozenset(answers),
        method=method_name(strategy, mode, scc_step1),
        cost=instance.counter,
        details=details,
    )


def method_program(
    query: CSLQuery,
    strategy: Strategy = Strategy.MULTIPLE,
    mode: Mode = Mode.INTEGRATED,
    scc_step1: bool = False,
    optimize: bool = False,
):
    """One method's modified-rule listing as a Datalog program artifact.

    Runs Step 1, emits the Section 4/5 modified rules via
    :func:`~repro.core.program_rewrite.magic_counting_program`, and —
    with ``optimize`` — feeds them through the static program optimizer
    against the query's database snapshot.  Returns ``(program,
    report)`` where ``report`` is the
    :class:`~repro.analysis.rewrite.OptimizationReport` (``None`` when
    ``optimize`` is off).  This is the inspectable/benchmarkable twin of
    :func:`magic_counting`: same Step 1, but the Step 2 fixpoint stays
    a program for the generic engine instead of a specialised loop.
    """
    from .program_rewrite import magic_counting_program

    instance = query.instance()
    reduced = compute_reduced_sets(instance, strategy, scc_variant=scc_step1)
    if mode is Mode.INTEGRATED:
        reduced.ensure_source_pair(instance.source)
    program = magic_counting_program(query.to_program(), reduced, mode)
    if not optimize:
        return program, None
    from ..analysis.rewrite import optimize_program

    report = optimize_program(program, query.database())
    return report.program, report


def all_method_coordinates():
    """The eight (strategy, mode) pairs, in the paper's order."""
    return [
        (strategy, mode)
        for strategy in (
            Strategy.BASIC,
            Strategy.SINGLE,
            Strategy.MULTIPLE,
            Strategy.RECURRING,
        )
        for mode in (Mode.INDEPENDENT, Mode.INTEGRATED)
    ]


@dataclass(frozen=True, eq=False)
class PlanRecommendation:
    """One method choice, with the *why* attached.

    Unpacks like the historical 4-tuple (``name, strategy, mode,
    scc_step1 = recommended_plan(...)`` keeps working), but carries
    provenance — ``"heuristic"`` for the regime policy, ``"certified-
    bound"`` when a cost certificate ranked the candidates, and
    ``"heuristic-fallback"`` when a certificate was offered but
    abstained on every candidate — plus a ranked candidate table in
    ``details["ranking"]``.
    """

    method: str
    strategy: Optional[Strategy]
    mode: Optional[Mode]
    scc_step1: bool
    provenance: str = "heuristic"
    details: Dict[str, object] = field(default_factory=dict)

    def __iter__(self):
        return iter((self.method, self.strategy, self.mode, self.scc_step1))

    def __getitem__(self, index):
        return (self.method, self.strategy, self.mode, self.scc_step1)[index]

    def __len__(self) -> int:
        return 4


def plan_candidates() -> List[Tuple[str, Optional[Strategy], Optional[Mode], bool]]:
    """Every plan ``adaptive_solve`` can execute, in preference order
    (the order breaks exact bound ties after the heuristic choice)."""
    candidates: List[Tuple[str, Optional[Strategy], Optional[Mode], bool]] = [
        ("counting", None, None, False)
    ]
    for strategy, mode in all_method_coordinates():
        candidates.append((method_name(strategy, mode), strategy, mode, False))
    for mode in (Mode.INDEPENDENT, Mode.INTEGRATED):
        candidates.append(
            (
                method_name(Strategy.RECURRING, mode, scc_step1=True),
                Strategy.RECURRING,
                mode,
                True,
            )
        )
    return candidates


def _heuristic_plan(classification) -> PlanRecommendation:
    if classification.is_regular:
        choice: Tuple[str, Optional[Strategy], Optional[Mode], bool] = (
            "counting", None, None, False,
        )
        reason = "regular magic graph: pure counting is unbeatable there"
    elif not classification.is_cyclic:
        choice = (
            method_name(Strategy.MULTIPLE, Mode.INTEGRATED),
            Strategy.MULTIPLE,
            Mode.INTEGRATED,
            False,
        )
        reason = (
            "acyclic non-regular: the integrated multiple method is the "
            "best measured all-rounder without recurring Step-1 overhead"
        )
    else:
        choice = (
            method_name(Strategy.RECURRING, Mode.INTEGRATED, scc_step1=True),
            Strategy.RECURRING,
            Mode.INTEGRATED,
            True,
        )
        reason = (
            "cyclic: the integrated recurring method with the linear-time "
            "SCC Step 1"
        )
    name, strategy, mode, scc = choice
    return PlanRecommendation(
        method=name,
        strategy=strategy,
        mode=mode,
        scc_step1=scc,
        provenance="heuristic",
        details={"reason": reason, "heuristic": name},
    )


def recommended_plan(classification, cost_certificate=None):
    """The selection policy: certified bounds first, regime heuristics
    as the fallback.

    Returns a :class:`PlanRecommendation` (unpacks as the historical
    ``(method_name, strategy, mode, scc_step1)`` tuple; ``strategy``
    and ``mode`` are None for the pure counting method).  This is the
    single source of truth shared by :func:`repro.core.solver.
    adaptive_solve` and the static method-admissibility advisory.

    Without a certificate the regime policy applies: **regular** — the
    pure counting method; **acyclic non-regular** — the integrated
    multiple method; **cyclic** — the integrated recurring method with
    the SCC Step 1.

    With a ``cost_certificate`` (a :class:`repro.analysis.cost.
    CostCertificate` for this source) every executable candidate with a
    certified finite bound is ranked and the smallest bound wins; exact
    ties prefer the heuristic choice, then candidate order.  When the
    certificate abstains on every candidate the heuristic choice stands
    (provenance ``"heuristic-fallback"``).  Either way
    ``details["ranking"]`` records the full table.
    """
    heuristic = _heuristic_plan(classification)
    if cost_certificate is None:
        return heuristic

    candidates = plan_candidates()
    ranking: List[Dict[str, object]] = []
    best: Optional[Tuple[str, Optional[Strategy], Optional[Mode], bool]] = None
    best_bound: Optional[int] = None
    for candidate in candidates:
        name = candidate[0]
        bound = cost_certificate.bound_for(name)
        entry = cost_certificate.bounds.get(name)
        ranking.append(
            {
                "method": name,
                "bound": bound,
                "provenance": "certified-bound" if bound is not None
                else "abstained",
                "reason": None if entry is None else entry.reason,
                "selected": False,
            }
        )
        if bound is None:
            continue
        improves = best_bound is None or bound < best_bound
        ties_to_heuristic = (
            best_bound is not None
            and bound == best_bound
            and name == heuristic.method
        )
        if improves or ties_to_heuristic:
            best, best_bound = candidate, bound

    ranking.sort(
        key=lambda row: (
            row["bound"] is None,
            row["bound"] if row["bound"] is not None else 0,
        )
    )
    details: Dict[str, object] = {
        "heuristic": heuristic.method,
        "ranking": ranking,
        "widened": cost_certificate.widened,
    }
    if best is None:
        details["reason"] = (
            "the cost analyzer abstained on every candidate; "
            "falling back to the regime heuristic "
            f"({heuristic.details['reason']})"
        )
        return PlanRecommendation(
            method=heuristic.method,
            strategy=heuristic.strategy,
            mode=heuristic.mode,
            scc_step1=heuristic.scc_step1,
            provenance="heuristic-fallback",
            details=details,
        )
    name, strategy, mode, scc = best
    for row in ranking:
        if row["method"] == name:
            row["selected"] = True
            break
    details["reason"] = (
        f"smallest certified retrieval bound ({best_bound}); "
        f"heuristic would pick {heuristic.method}"
        if name != heuristic.method
        else f"smallest certified retrieval bound ({best_bound}), "
        "agreeing with the regime heuristic"
    )
    return PlanRecommendation(
        method=name,
        strategy=strategy,
        mode=mode,
        scc_step1=scc,
        provenance="certified-bound",
        details=details,
    )
