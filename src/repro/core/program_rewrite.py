"""The paper's modified-rule listings, emitted as real Datalog programs.

Sections 4 and 5 present the magic counting methods as *rewritten rule
sets* ("MODIFIED RULES & QUERY FOR INDEPENDENT/INTEGRATED MC METHODS").
The direct engines in :mod:`repro.core.step2` implement those rules as
specialised fixpoints; this module emits them as honest-to-goodness
Datalog programs instead — RC, RM and MS become EDB relations, the
modified rules become textual rules, and the semi-naive engine of
:mod:`repro.datalog.evaluation` evaluates them.

This closes an important validation loop: the OCR-corrected reading of
the integrated transfer rule (rule 3 of Section 5; see DESIGN.md) is
checked *twice*, once by the specialised engine and once by the generic
engine running the emitted program, and both must agree with the naive
oracle on arbitrary instances (tests/test_program_rewrite.py).

Generalises to the full CSL class via
:func:`repro.datalog.linear.analyze_linear` — multi-column bindings and
conjunctive or derived L/E/R parts all work.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..datalog.atom import Atom, Literal
from ..datalog.builtins import arithmetic, comparison
from ..datalog.counting_rewrite import _fresh_index_variables
from ..datalog.linear import LinearRecursion, analyze_linear
from ..datalog.program import Program
from ..datalog.rule import Rule
from ..datalog.term import Constant
from .reduced_sets import Mode, ReducedSets


def reduced_set_names(predicate: str) -> Tuple[str, str, str]:
    """EDB relation names for (RC, RM, MS) of ``predicate``."""
    return f"rc_{predicate}", f"rm_{predicate}", f"ms_{predicate}"


def _as_values(source) -> Tuple:
    """Normalize a (possibly tuple-valued) bound part to columns."""
    return source if isinstance(source, tuple) else (source,)


def reduced_set_facts(predicate: str, reduced: ReducedSets):
    """Ground fact rules materializing RC/RM/MS for the rewritten
    program (yielded as bodiless rules)."""
    rc_name, rm_name, ms_name = reduced_set_names(predicate)
    for index, value in sorted(reduced.rc, key=repr):
        yield Rule(Atom(rc_name, (Constant(index),) + tuple(
            Constant(v) for v in _as_values(value))))
    for value in sorted(reduced.rm, key=repr):
        yield Rule(Atom(rm_name, tuple(Constant(v) for v in _as_values(value))))
    for value in sorted(reduced.ms, key=repr):
        yield Rule(Atom(ms_name, tuple(Constant(v) for v in _as_values(value))))


def magic_counting_program(
    program: Program,
    reduced: ReducedSets,
    mode: Mode,
    goal: Atom = None,
    analysis: Optional[LinearRecursion] = None,
) -> Program:
    """Emit the Section 4 (independent) or Section 5 (integrated)
    modified rules for ``program`` as a Datalog program.

    ``reduced`` supplies RC/RM/MS (computed by any Step-1 strategy; for
    the integrated mode call ``reduced.ensure_source_pair`` first).
    Rules of derived (non-recursive) predicates are carried over.
    """
    if analysis is None:
        analysis = analyze_linear(program, goal)
    goal = analysis.goal
    predicate = analysis.predicate
    rc_name, rm_name, ms_name = reduced_set_names(predicate)
    pc_name = f"pc_{predicate}"
    pm_name = f"pm_{predicate}"
    index_var, next_index_var = _fresh_index_variables(analysis)

    rewritten = Program()
    for rule in program.rules:
        if rule.head.predicate != predicate:
            rewritten.add_rule(rule)
    for fact in reduced_set_facts(predicate, reduced):
        rewritten.add_rule(fact)

    goal_free = tuple(goal.terms[i] for i in analysis.free)

    # --- counting part (shared by both modes) --------------------------
    # P_C(J, Y) :- RC(J, Xexit), exit body.            (one per exit rule)
    for exit_rule in analysis.exit_rules:
        exit_bound = tuple(exit_rule.head.terms[i] for i in analysis.bound)
        exit_free = tuple(exit_rule.head.terms[i] for i in analysis.free)
        rewritten.add_rule(
            Rule(
                Atom(pc_name, (index_var, *exit_free)),
                (
                    Literal(Atom(rc_name, (index_var, *exit_bound))),
                    *exit_rule.body,
                ),
            )
        )
    # P_C(J-1, Y) :- P_C(J, Y1), R...  (guarded at zero, Prolog-style)
    rewritten.add_rule(
        Rule(
            Atom(pc_name, (next_index_var, *analysis.head_free_terms)),
            (
                Literal(Atom(pc_name, (index_var, *analysis.rec_free_terms))),
                *analysis.right_elements,
                comparison(">=", index_var, 1),
                arithmetic(next_index_var, index_var, "-", 1),
            ),
        )
    )

    # --- magic part ------------------------------------------------------
    # P_M exit: P_M(X, Y) :- RM(Xexit), exit body.  (P_M keeps the
    # predicate's original argument layout, so the exit head carries over.)
    for exit_rule in analysis.exit_rules:
        exit_bound = tuple(exit_rule.head.terms[i] for i in analysis.bound)
        rewritten.add_rule(
            Rule(
                Atom(pm_name, exit_rule.head.terms),
                (Literal(Atom(rm_name, exit_bound)), *exit_rule.body),
            )
        )
    # P_M recursion: guard is MS for independent (§4 rule 4), RM for
    # integrated (§5 rule 2).
    recursion_guard = ms_name if mode is Mode.INDEPENDENT else rm_name
    rewritten.add_rule(
        Rule(
            Atom(pm_name, analysis.recursive_rule.head.terms),
            (
                Literal(Atom(recursion_guard, analysis.head_bound_terms)),
                *analysis.left_elements,
                Literal(Atom(pm_name, analysis.recursive_literal.terms)),
                *analysis.right_elements,
            ),
        )
    )

    if mode is Mode.INTEGRATED:
        # §5 rule 3 (the transfer rule, OCR-corrected):
        # P_C(J, Y) :- RC(J, X), L..., P_M(X1, Y1), R...
        rewritten.add_rule(
            Rule(
                Atom(pc_name, (index_var, *analysis.head_free_terms)),
                (
                    Literal(Atom(rc_name, (index_var, *analysis.head_bound_terms))),
                    *analysis.left_elements,
                    Literal(Atom(pm_name, analysis.recursive_literal.terms)),
                    *analysis.right_elements,
                ),
            )
        )
        # §5 rule 6: the answer comes from the counting part only.
        answer_atom = Atom("answer_" + predicate, goal_free)
        rewritten.add_rule(
            Rule(answer_atom, (Literal(Atom(pc_name, (Constant(0), *goal_free))),))
        )
    else:
        # §4 rules 5 and 6: both parts feed the answer.
        answer_atom = Atom("answer_" + predicate, goal_free)
        rewritten.add_rule(
            Rule(answer_atom, (Literal(Atom(pc_name, (Constant(0), *goal_free))),))
        )
        rewritten.add_rule(
            Rule(answer_atom, (Literal(Atom(pm_name, goal.terms)),))
        )

    rewritten.query = Atom("answer_" + predicate, goal_free)
    return rewritten


def evaluate_with_program_rewrite(
    query, strategy, mode, scc_step1=False, optimize=False
):
    """Convenience: CSLQuery -> Step 1 -> emitted program -> semi-naive.

    Returns the answer set; used by the cross-validation tests to check
    the specialised Step-2 engines against the generic Datalog engine
    evaluating the paper's literal rule listings.  ``optimize`` runs the
    static program optimizer (:mod:`repro.analysis.rewrite`) over the
    emitted rules first — answers are unchanged by contract, retrievals
    only go down.
    """
    from ..datalog.evaluation import answer_tuples
    from .step1 import compute_reduced_sets

    instance = query.instance()
    reduced = compute_reduced_sets(instance, strategy, scc_variant=scc_step1)
    if mode is Mode.INTEGRATED:
        reduced.ensure_source_pair(query.source)
    program = query.to_program()
    rewritten = magic_counting_program(program, reduced, mode)
    database = query.database()
    if optimize:
        from ..analysis.rewrite import optimize_program

        rewritten = optimize_program(rewritten, database).program
    return frozenset(v for (v,) in answer_tuples(rewritten, database))
