"""Canonical strongly linear (CSL) queries.

The paper's entire development is phrased over the abstract query

    P(X, Y) :- E(X, Y).
    P(X, Y) :- L(X, X1), P(X1, Y1), R(Y, Y1).
    ?- P(a, Y).

A :class:`CSLQuery` is precisely this abstraction: three binary relations
``L``, ``E``, ``R`` (as plain sets of pairs) plus the source constant
``a``.  Every method in :mod:`repro.core` consumes a ``CSLQuery``.

Two bridges connect it to the Datalog world:

* :meth:`CSLQuery.from_program` — recognizes a CSL-shaped Datalog
  program (via :func:`repro.datalog.linear.analyze_linear`) and
  *materializes* its ``L``/``E``/``R`` parts, which may be conjunctions
  of derived predicates (the generalisation Section 1 sketches).  Multi-
  column bound/free parts become tuple-valued constants.
* :meth:`CSLQuery.to_program` — emits the canonical Datalog program,
  used by the oracle evaluators and the rewriting round-trip tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from ..datalog.atom import Atom, Literal
from ..datalog.database import Database
from ..datalog.evaluation import seminaive_evaluate
from ..datalog.linear import LinearRecursion, analyze_linear
from ..datalog.program import Program
from ..datalog.relation import CostCounter, Relation
from ..datalog.rule import Rule
from ..datalog.term import Constant, Variable
from ..errors import NotCSLError

Pair = Tuple[object, object]


@dataclass(frozen=True)
class CSLQuery:
    """A canonical strongly linear query instance.

    ``left``/``exit``/``right`` are the paper's ``L``/``E``/``R``
    relations; ``source`` is the bound constant ``a`` of the goal.
    """

    left: FrozenSet[Pair]
    exit: FrozenSet[Pair]
    right: FrozenSet[Pair]
    source: object

    def __init__(self, left: Iterable[Pair], exit: Iterable[Pair],
                 right: Iterable[Pair], source):
        object.__setattr__(self, "left", frozenset(tuple(p) for p in left))
        object.__setattr__(self, "exit", frozenset(tuple(p) for p in exit))
        object.__setattr__(self, "right", frozenset(tuple(p) for p in right))
        object.__setattr__(self, "source", source)

    # --- constructors --------------------------------------------------

    @classmethod
    def same_generation(
        cls,
        parent: Iterable[Pair],
        source,
        persons: Optional[Iterable] = None,
    ) -> "CSLQuery":
        """The same-generation query of the introduction.

        ``parent`` holds (child, parent) pairs; ``L = R = parent`` and the
        exit relation is the identity over ``persons`` (defaults to every
        value occurring in ``parent`` plus the source) — "every person is
        of the same generation as himself".
        """
        parent = frozenset(tuple(p) for p in parent)
        if persons is None:
            person_set = {value for pair in parent for value in pair}
            person_set.add(source)
        else:
            person_set = set(persons)
            person_set.add(source)
        identity = {(p, p) for p in person_set}
        return cls(parent, identity, parent, source)

    @classmethod
    def from_program(cls, program: Program, goal: Atom = None,
                     analysis: Optional[LinearRecursion] = None,
                     database: Optional[Database] = None) -> "CSLQuery":
        """Extract a CSLQuery from a CSL-shaped Datalog program.

        ``database`` supplies the EDB facts.  Derived predicates used in
        the ``L``/``E``/``R`` conjunctions are materialized first by
        semi-naive evaluation of the non-recursive part of the program.
        Raises :class:`NotCSLError` when the program is outside the class.
        """
        if database is None:
            raise NotCSLError("a database of EDB facts is required")
        if analysis is None:
            analysis = analyze_linear(program, goal)
        goal = analysis.goal

        # Materialize derived predicates (everything except the recursive
        # predicate itself) into a scratch copy of the database.
        scratch = database.copy(CostCounter())
        support = Program(
            [r for r in program.rules if r.head.predicate != analysis.predicate]
        )
        if support.rules:
            seminaive_evaluate(support, scratch)

        def conjunction_pairs(elements, from_terms, to_terms) -> Set[Pair]:
            """Evaluate a conjunction and project (from-part, to-part).

            The conjunction is lowered once into a join kernel
            (:mod:`repro.datalog.engine`) and executed flat — the same
            machinery the semi-naive engine uses, so materialization
            rides the compiled hot path too.
            """
            from ..datalog.engine import materialize_conjunction

            from_terms = tuple(from_terms)
            to_terms = tuple(to_terms)
            try:
                rows = materialize_conjunction(
                    elements, from_terms + to_terms, scratch
                )
            except ValueError as exc:
                # An unbound projection term surfaces from the kernel as
                # the head-grounding ValueError; in CSL recognition that
                # means the program is outside the class.
                raise NotCSLError(
                    f"unbound term while materializing conjunct: {exc}"
                ) from exc
            split = len(from_terms)
            pairs: Set[Pair] = set()
            for row in rows:
                from_values = row[:split]
                to_values = row[split:]
                pairs.add(
                    (
                        from_values[0] if len(from_values) == 1 else from_values,
                        to_values[0] if len(to_values) == 1 else to_values,
                    )
                )
            return pairs

        left_pairs = conjunction_pairs(
            analysis.left_elements,
            analysis.head_bound_terms,
            analysis.rec_bound_terms,
        )
        right_pairs = conjunction_pairs(
            analysis.right_elements,
            analysis.head_free_terms,
            analysis.rec_free_terms,
        )
        exit_pairs: Set[Pair] = set()
        for exit_rule in analysis.exit_rules:
            exit_bound = tuple(exit_rule.head.terms[i] for i in analysis.bound)
            exit_free = tuple(exit_rule.head.terms[i] for i in analysis.free)
            exit_pairs |= conjunction_pairs(exit_rule.body, exit_bound, exit_free)

        goal_constants = tuple(goal.terms[i].value for i in analysis.bound)
        source = goal_constants[0] if len(goal_constants) == 1 else goal_constants
        return cls(left_pairs, exit_pairs, right_pairs, source)

    # --- bridges back to Datalog ---------------------------------------

    def to_program(self) -> Program:
        """The canonical Datalog program for this query instance.

        Uses predicate names ``l``, ``e``, ``r``, ``p`` and the goal
        ``?- p(a, Y)``.  Facts are *not* included; see :meth:`database`.
        """
        x, y, x1, y1 = (Variable(n) for n in ("X", "Y", "X1", "Y1"))
        program = Program()
        program.add_rule(Rule(Atom("p", (x, y)), (Literal(Atom("e", (x, y))),)))
        program.add_rule(
            Rule(
                Atom("p", (x, y)),
                (
                    Literal(Atom("l", (x, x1))),
                    Literal(Atom("p", (x1, y1))),
                    Literal(Atom("r", (y, y1))),
                ),
            )
        )
        program.query = Atom("p", (Constant(self.source), y))
        return program

    def database(self, counter: Optional[CostCounter] = None) -> Database:
        """A database holding the EDB relations ``l``, ``e``, ``r``."""
        database = Database(counter)
        database.create("l", 2).add_all(self.left)
        database.create("e", 2).add_all(self.exit)
        database.create("r", 2).add_all(self.right)
        return database

    def instance(self, counter: Optional[CostCounter] = None) -> "CSLInstance":
        """A cost-instrumented relation triple for the direct engines."""
        counter = counter if counter is not None else CostCounter()
        return CSLInstance(
            left=Relation("l", 2, self.left, counter),
            exit=Relation("e", 2, self.exit, counter),
            right=Relation("r", 2, self.right, counter),
            source=self.source,
            counter=counter,
        )

    # --- uncharged structural views (for analysis) ----------------------

    def left_successors(self) -> Dict[object, Set[object]]:
        """Adjacency of the L relation: b -> {c : (b, c) in L}."""
        adjacency: Dict[object, Set[object]] = {}
        for b, c in self.left:
            adjacency.setdefault(b, set()).add(c)
        return adjacency

    def magic_set(self) -> Set[object]:
        """The magic set MS: values L-reachable from the source
        (including the source itself)."""
        adjacency = self.left_successors()
        seen = {self.source}
        stack = [self.source]
        while stack:
            node = stack.pop()
            for successor in adjacency.get(node, ()):
                if successor not in seen:
                    seen.add(successor)
                    stack.append(successor)
        return seen

    def __repr__(self):
        return (
            f"CSLQuery(source={self.source!r}, |L|={len(self.left)}, "
            f"|E|={len(self.exit)}, |R|={len(self.right)})"
        )


@dataclass
class CSLInstance:
    """Cost-instrumented relations for one evaluation run.

    All engines read ``left``/``exit``/``right`` exclusively through
    :meth:`Relation.lookup`, so ``counter`` accumulates the total
    tuple-retrieval cost — the paper's cost unit.
    """

    left: Relation
    exit: Relation
    right: Relation
    source: object
    counter: CostCounter = field(default_factory=CostCounter)
