"""The efficiency hierarchy of Figure 3.

The paper orders the methods by asymptotic cost, per magic-graph class:

* fixing the mode, RECURRING ≤ MULTIPLE ≤ SINGLE ≤ BASIC (the recurring
  vs. multiple edge holds only *on average*, i.e. under the realistic
  assumption ``m_L = O(m_R)`` — Section 9);
* fixing the strategy, INTEGRATED ≤ INDEPENDENT;
* every magic counting method ≤ the magic set method, and on regular
  graphs every method collapses to the counting method's
  Θ(m_L + n_L·m_R).

``HIERARCHY_RELATIONS`` encodes the arcs of Figure 3 (solid arcs =
always, per Propositions 4-7; dotted arcs = average-case).
:func:`check_dominance` verifies a set of *measured* costs against the
hierarchy with a slack factor, which is how the Figure 3 benchmark
asserts the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional

from .classification import MagicGraphClass

_R = MagicGraphClass.REGULAR
_A = MagicGraphClass.ACYCLIC
_C = MagicGraphClass.CYCLIC


@dataclass(frozen=True)
class DominanceRelation:
    """``better`` costs asymptotically no more than ``worse`` on the
    given graph classes.  ``average_only`` marks the dotted arcs of
    Figure 3 (they need the ``m_L = O(m_R)`` average-case assumption)."""

    better: str
    worse: str
    classes: FrozenSet[MagicGraphClass]
    average_only: bool = False
    source: str = ""


HIERARCHY_RELATIONS: List[DominanceRelation] = [
    # Proposition 2: counting vs magic set.
    DominanceRelation("counting", "magic_set", frozenset({_R}), False, "Prop 2a"),
    DominanceRelation("counting", "magic_set", frozenset({_A}), True, "Prop 2b"),
    # Proposition 4: basic methods.
    DominanceRelation("mc_basic_independent", "magic_set", frozenset({_R, _A, _C}),
                      False, "Prop 4 (B =_{A,C} Ms, better on regular)"),
    DominanceRelation("mc_basic_integrated", "magic_set", frozenset({_R, _A, _C}),
                      False, "Prop 4"),
    DominanceRelation("counting", "mc_basic_independent", frozenset({_A}),
                      True, "Prop 4 (C ≲_A B)"),
    # Proposition 5: single methods.
    DominanceRelation("mc_single_independent", "mc_basic_independent",
                      frozenset({_A, _C}), False, "Prop 5"),
    DominanceRelation("mc_single_integrated", "mc_basic_integrated",
                      frozenset({_A, _C}), False, "Prop 5"),
    DominanceRelation("mc_single_integrated", "mc_single_independent",
                      frozenset({_A, _C}), False, "Prop 5"),
    # Proposition 6: multiple methods.
    DominanceRelation("mc_multiple_independent", "mc_single_independent",
                      frozenset({_A, _C}), False, "Prop 6"),
    DominanceRelation("mc_multiple_integrated", "mc_single_integrated",
                      frozenset({_A, _C}), False, "Prop 6"),
    DominanceRelation("mc_multiple_integrated", "mc_multiple_independent",
                      frozenset({_A, _C}), False, "Prop 6"),
    # Proposition 7: recurring methods (dotted vs multiple — the naive
    # Step 1 pays n_L × m_L, so dominance is average-case).
    DominanceRelation("mc_recurring_integrated", "mc_recurring_independent",
                      frozenset({_A, _C}), False, "Prop 7"),
    DominanceRelation("mc_recurring_independent", "mc_multiple_independent",
                      frozenset({_A, _C}), True, "Prop 7 / §9"),
    DominanceRelation("mc_recurring_integrated", "mc_multiple_integrated",
                      frozenset({_A, _C}), True, "Prop 7 / §9"),
    # Conclusion: every magic counting method beats the magic set method.
    DominanceRelation("mc_single_integrated", "magic_set",
                      frozenset({_A, _C}), False, "Conclusion"),
    DominanceRelation("mc_multiple_integrated", "magic_set",
                      frozenset({_A, _C}), False, "Conclusion"),
    DominanceRelation("mc_recurring_integrated", "magic_set",
                      frozenset({_A, _C}), True, "Conclusion"),
]

# On regular graphs every method coincides with the counting method.
REGULAR_EQUIVALENCE_GROUP: List[str] = [
    "counting",
    "mc_basic_independent",
    "mc_basic_integrated",
    "mc_single_independent",
    "mc_single_integrated",
    "mc_multiple_independent",
    "mc_multiple_integrated",
    "mc_recurring_independent",
    "mc_recurring_integrated",
]


@dataclass
class DominanceViolation:
    relation: DominanceRelation
    better_cost: int
    worse_cost: int

    def __str__(self):
        return (
            f"{self.relation.better} ({self.better_cost}) should not exceed "
            f"{self.relation.worse} ({self.worse_cost}) [{self.relation.source}]"
        )


def check_dominance(
    measured: Dict[str, Optional[int]],
    graph_class: MagicGraphClass,
    slack: float = 1.0,
    include_average: bool = True,
) -> List[DominanceViolation]:
    """Check measured costs against every applicable hierarchy arc.

    ``measured`` maps method names to tuple-retrieval counts (``None``
    for methods that were unsafe on the instance — those relations are
    skipped, as are relations whose methods were not measured).
    ``slack`` relaxes the comparison (Θ hides constants; on single
    instances a factor around 1-2 is appropriate).  Returns the list of
    violated relations (empty = hierarchy holds).
    """
    violations: List[DominanceViolation] = []
    for relation in HIERARCHY_RELATIONS:
        if graph_class not in relation.classes:
            continue
        if relation.average_only and not include_average:
            continue
        better_cost = measured.get(relation.better)
        worse_cost = measured.get(relation.worse)
        if better_cost is None or worse_cost is None:
            continue
        if better_cost > slack * worse_cost:
            violations.append(
                DominanceViolation(relation, better_cost, worse_cost)
            )
    return violations


FIGURE3_ART = r"""
        Efficiency hierarchy (Figure 3) — an arrow X --> Y means
        "X costs asymptotically no more than Y" on non-regular graphs;
        ~~> arcs hold on average (m_L = O(m_R)).  On regular graphs
        every method equals the counting method C.

                      Ms  (magic set)
                       ^
                       |
                       B  (basic, either mode)
                     ^   ^
                    /     \
              S_IND        |
               ^  ^        |
               |   \       |
               |    S_INT  |
               |     ^     |
          M_IND      |     |
           ^  ^      |     |
           ~   \     |     |
           ~    M_INT      |
           ~     ^         |
        R_IND    ~         |
           ^     ~         |
            \    ~         |
             R_INT ~~~~~~~~+
"""


def render_figure3() -> str:
    """A textual rendering of the Figure 3 lattice plus the relation
    table (solid vs. average-case arcs with their sources)."""
    lines = [FIGURE3_ART, "Relations encoded:"]
    for relation in HIERARCHY_RELATIONS:
        arrow = "≲ (avg)" if relation.average_only else "≤"
        classes = ",".join(sorted(c.value[0].upper() for c in relation.classes))
        lines.append(
            f"  {relation.better:28s} {arrow:8s} {relation.worse:28s} "
            f"[{classes}] ({relation.source})"
        )
    return "\n".join(lines)


def check_regular_equivalence(
    measured: Dict[str, Optional[int]], slack: float = 3.0
) -> List[str]:
    """On a regular graph all methods should cost the same up to a
    constant; returns the names outside ``slack`` of the group median."""
    costs = [
        (name, measured[name])
        for name in REGULAR_EQUIVALENCE_GROUP
        if measured.get(name) is not None
    ]
    if not costs:
        return []
    values = sorted(cost for _name, cost in costs)
    median = values[len(values) // 2]
    return [
        name
        for name, cost in costs
        if cost > slack * median or median > slack * max(cost, 1)
    ]
