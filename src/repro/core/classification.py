"""Ground-truth classification of magic-graph nodes (Section 3).

For each node ``b`` of the magic graph ``G_L``, ``I_b`` is the set of
path lengths from the source ``a`` to ``b``.  ``b`` is

* **single** when ``I_b`` is a singleton,
* **multiple** when ``I_b`` is finite with more than one element,
* **recurring** when ``I_b`` is infinite — by Proposition 1(c) exactly
  when some directed path from ``a`` to ``b`` passes through a cycle.

The magic graph is **regular** when every node is single.

The computation here is the analytical reference (used by tests to
validate the paper's Step-1 fixpoints, and by the "smarter" SCC-based
recurring Step 1):

1. Tarjan SCC on ``G_L``; nodes of non-trivial components (or with a
   self-loop) are *cyclic cores*;
2. recurring = forward closure of the cores;
3. the subgraph induced by the non-recurring nodes is a DAG; a dynamic
   program over a topological order accumulates the exact distance sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, List, Optional, Set

from ..datalog.stratify import strongly_connected_components
from .csl import CSLQuery
from .query_graph import QueryGraph, build_query_graph


class NodeClass(Enum):
    SINGLE = "single"
    MULTIPLE = "multiple"
    RECURRING = "recurring"


class MagicGraphClass(Enum):
    """The three magic-graph regimes of the paper's cost tables."""

    REGULAR = "regular"
    ACYCLIC = "acyclic"  # non-regular but cycle-free
    CYCLIC = "cyclic"


@dataclass
class Classification:
    """Node classes and distance sets of one magic graph."""

    source: object
    distance_sets: Dict[object, FrozenSet[int]] = field(default_factory=dict)
    single: Set[object] = field(default_factory=set)
    multiple: Set[object] = field(default_factory=set)
    recurring: Set[object] = field(default_factory=set)
    shortest_distance: Dict[object, int] = field(default_factory=dict)

    @property
    def is_regular(self) -> bool:
        return not self.multiple and not self.recurring

    @property
    def is_cyclic(self) -> bool:
        return bool(self.recurring)

    @property
    def counting_safe(self) -> bool:
        """True when the pure counting method terminates on this graph
        (no recurring node — equivalently, no reachable L-cycle)."""
        return not self.recurring

    @property
    def graph_class(self) -> MagicGraphClass:
        if self.recurring:
            return MagicGraphClass.CYCLIC
        if self.multiple:
            return MagicGraphClass.ACYCLIC
        return MagicGraphClass.REGULAR

    def node_class(self, node) -> NodeClass:
        if node in self.recurring:
            return NodeClass.RECURRING
        if node in self.multiple:
            return NodeClass.MULTIPLE
        return NodeClass.SINGLE

    def indices(self, node) -> Optional[FrozenSet[int]]:
        """``I_b`` for non-recurring ``b``; None when infinite."""
        return self.distance_sets.get(node)


def classify_graph(graph: QueryGraph) -> Classification:
    """Classify every node of the magic graph ``G_L`` of ``graph``."""
    successors = graph.l_successors()
    classification = Classification(source=graph.source)

    # Shortest distances (BFS) — used for i_x and as a sanity anchor.
    frontier = [graph.source]
    classification.shortest_distance[graph.source] = 0
    depth = 0
    while frontier:
        depth += 1
        next_frontier = []
        for node in frontier:
            for successor in successors[node]:
                if successor not in classification.shortest_distance:
                    classification.shortest_distance[successor] = depth
                    next_frontier.append(successor)
        frontier = next_frontier

    # Cyclic cores: non-trivial SCCs and self-loops.
    components = strongly_connected_components(sorted(graph.l_nodes, key=repr), successors)
    cores: Set[object] = set()
    for component in components:
        if len(component) > 1:
            cores.update(component)
        else:
            node = component[0]
            if node in successors[node]:
                cores.add(node)

    # Recurring = forward closure of the cores.
    stack = list(cores)
    recurring = set(cores)
    while stack:
        node = stack.pop()
        for successor in successors[node]:
            if successor not in recurring:
                recurring.add(successor)
                stack.append(successor)
    classification.recurring = recurring

    # Distance sets for the non-recurring nodes: DP over a topological
    # order of the induced (acyclic) subgraph.
    finite_nodes = graph.l_nodes - recurring
    order = _topological_order(finite_nodes, successors)
    working: Dict[object, Set[int]] = {node: set() for node in finite_nodes}
    if graph.source in working:
        working[graph.source].add(0)
    for node in order:
        indices = working[node]
        if not indices:
            continue
        for successor in successors[node]:
            if successor in working:
                working[successor].update(i + 1 for i in indices)

    for node in finite_nodes:
        indices = frozenset(working[node])
        classification.distance_sets[node] = indices
        if len(indices) == 1:
            classification.single.add(node)
        else:
            classification.multiple.add(node)
    return classification


def _topological_order(nodes: Set[object], successors) -> List[object]:
    """Topological order of the subgraph induced by ``nodes`` (a DAG)."""
    indegree: Dict[object, int] = {node: 0 for node in nodes}
    for node in nodes:
        for successor in successors[node]:
            if successor in indegree:
                indegree[successor] += 1
    ready = [node for node, degree in indegree.items() if degree == 0]
    order: List[object] = []
    while ready:
        node = ready.pop()
        order.append(node)
        for successor in successors[node]:
            if successor in indegree:
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    ready.append(successor)
    return order


def classify_nodes(query: CSLQuery) -> Classification:
    """Classification of the magic-graph nodes of ``query``."""
    return classify_graph(build_query_graph(query))


def boundary_index(classification: Classification) -> int:
    """The single methods' frontier ``i_x``: the maximum index such that
    every node with shortest distance less than ``i_x`` is single.

    On a regular graph this is ``max distance + 1`` (every node counted);
    the paper's Figure 2 has ``i_x = 2``.
    """
    non_single_distances = [
        distance
        for node, distance in classification.shortest_distance.items()
        if node in classification.multiple or node in classification.recurring
    ]
    if not non_single_distances:
        return max(classification.shortest_distance.values(), default=0) + 1
    return min(non_single_distances)
