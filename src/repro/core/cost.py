"""Result and cost-report types shared by all evaluation methods."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet

from ..datalog.relation import CostCounter


@dataclass
class AnswerResult:
    """The outcome of evaluating a CSL query with one method.

    Attributes
    ----------
    answers:
        The answer set — the values ``Y`` with ``P(a, Y)`` derivable.
    method:
        Human-readable method name (``"counting"``, ``"magic_set"``,
        ``"mc_multiple_integrated"``, ...).
    cost:
        The tuple-retrieval counter that observed the whole run — the
        paper's cost unit (Section 3).
    details:
        Method-specific diagnostics: iteration counts, ``|CS|``/``|MS|``,
        the reduced sets used, etc.
    """

    answers: FrozenSet[object]
    method: str
    cost: CostCounter
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def retrievals(self) -> int:
        return self.cost.retrievals

    def __repr__(self):
        return (
            f"AnswerResult(method={self.method!r}, answers={len(self.answers)}, "
            f"retrievals={self.cost.retrievals})"
        )
