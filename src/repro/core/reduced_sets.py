"""Reduced magic and counting sets, and the correctness conditions.

A magic counting method splits the magic set ``MS`` into a *reduced
counting set* ``RC`` (pairs ``(index, value)``) and a *reduced magic
set* ``RM`` (values).  Theorem 1 (independent methods) requires:

  (a) ``RM ∪ RC₋ᵢ = MS``, and
  (b) for each ``b ∈ RC₋ᵢ − RM``: ``RI_b = I_b`` (the reduced set
      carries *all* of ``b``'s indices).

Theorem 2 (integrated methods) additionally requires

  (c) ``(0, a) ∈ RC``.

:func:`check_theorem1` / :func:`check_theorem2` verify these against the
ground-truth classification; the property-based test suite runs them on
every strategy over random instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional, Set, Tuple

from ..errors import MethodConditionError
from .classification import Classification


class Strategy(Enum):
    """The first coordinate of a magic counting method (Sections 6-9)."""

    BASIC = "basic"
    SINGLE = "single"
    MULTIPLE = "multiple"
    RECURRING = "recurring"


class Mode(Enum):
    """The second coordinate: how the two parts cooperate (Sections 4-5)."""

    INDEPENDENT = "independent"
    INTEGRATED = "integrated"


@dataclass
class ReducedSets:
    """The output of a Step-1 computation.

    ``rc`` holds ``(index, value)`` pairs, ``rm`` and ``ms`` plain
    values.  ``ms`` is the full magic set — the independent methods'
    recursive magic rule (rule 4 of Section 4) still ranges over all of
    ``MS``, so Step 2 needs it alongside ``RM``.
    """

    rc: Set[Tuple[int, object]] = field(default_factory=set)
    rm: Set[object] = field(default_factory=set)
    ms: Set[object] = field(default_factory=set)
    strategy: Optional[Strategy] = None
    details: Dict[str, object] = field(default_factory=dict)

    def rc_values(self) -> Set[object]:
        """``RC₋ᵢ``: the values of RC with indices projected out."""
        return {value for _index, value in self.rc}

    def rc_indices(self, value) -> Set[int]:
        """``RI_b``: the indices associated with ``value`` in RC."""
        return {index for index, v in self.rc if v == value}

    def ensure_source_pair(self, source) -> "ReducedSets":
        """Guarantee condition (c) of Theorem 2: ``(0, a) ∈ RC``.

        The paper adds ``(0, a)`` whenever RC comes out empty; by the
        structure of the strategies this is the only case where the pair
        can be missing (the source is single unless the whole graph is
        recurring), but adding it unconditionally is harmless and keeps
        the integrated methods correct by construction.
        """
        self.rc.add((0, source))
        return self

    def __repr__(self):
        name = self.strategy.value if self.strategy else "?"
        return (
            f"ReducedSets({name}, |RC|={len(self.rc)}, |RM|={len(self.rm)}, "
            f"|MS|={len(self.ms)})"
        )


def check_theorem1(
    reduced: ReducedSets, classification: Classification, source
) -> None:
    """Raise :class:`MethodConditionError` unless Theorem 1 holds."""
    ms = reduced.ms
    rc_values = reduced.rc_values()
    if reduced.rm | rc_values != ms:
        missing = ms - (reduced.rm | rc_values)
        extra = (reduced.rm | rc_values) - ms
        raise MethodConditionError(
            f"condition (a) violated: RM ∪ RC₋ᵢ ≠ MS "
            f"(missing={sorted(map(repr, missing))}, extra={sorted(map(repr, extra))})"
        )
    for value in rc_values - reduced.rm:
        true_indices = classification.indices(value)
        if true_indices is None:
            raise MethodConditionError(
                f"condition (b) violated: recurring node {value!r} is in "
                "RC₋ᵢ − RM but has infinitely many indices"
            )
        if reduced.rc_indices(value) != set(true_indices):
            raise MethodConditionError(
                f"condition (b) violated for {value!r}: "
                f"RI={sorted(reduced.rc_indices(value))} "
                f"but I={sorted(true_indices)}"
            )


def check_theorem2(
    reduced: ReducedSets, classification: Classification, source
) -> None:
    """Raise :class:`MethodConditionError` unless Theorem 2 holds."""
    check_theorem1(reduced, classification, source)
    if (0, source) not in reduced.rc:
        raise MethodConditionError(
            "condition (c) violated: (0, a) is not in RC"
        )
