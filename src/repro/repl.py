"""An interactive deductive-database shell.

``python -m repro repl`` starts a small LDL-style console::

    dl> parent(ann, mona).              % assert a fact
    dl> sg(X, Y) :- flat(X, Y).        % add a rule
    dl> sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).
    dl> ?- sg(ann, Y).                  % run a query
    Y = ben
    dl> .method adaptive                % choose the evaluation method
    dl> .analyze sg(ann, Y)             % magic-graph diagnosis
    dl> .explain sg(ann, ben)           % proof tree
    dl> .rules / .facts / .help / .quit

Queries on CSL-shaped programs run through the paper's methods (per
``.method``); everything else falls back to semi-naive evaluation.
Designed to be driven programmatically too (:meth:`Repl.execute` maps
one input line to a list of output lines), which is how the test-suite
exercises it.
"""

from __future__ import annotations

from typing import List, Optional

from .core.csl import CSLQuery
from .core.solver import solve
from .datalog.database import Database
from .datalog.evaluation import answer_tuples
from .datalog.parser import parse_program
from .datalog.program import Program
from .errors import NotCSLError, ReproError

_METHODS = (
    "auto", "adaptive", "counting", "extended_counting", "magic_set",
    "henschen_naqvi", "magic_counting", "naive",
)

_HELP = """\
Enter facts (p(a, b).), rules (p(X) :- q(X).), or queries (?- p(a, Y).).
Dot commands:
  .method NAME     evaluation method for CSL queries (default: auto)
                   one of: """ + ", ".join(_METHODS) + """
  .analyze GOAL    magic-graph diagnosis for a goal, e.g. .analyze sg(a, Y)
  .plan GOAL       full EXPLAIN: counting set, reduced sets, predictions
  .explain FACT    proof tree for a ground fact, e.g. .explain sg(a, b)
  .rules           list the current rules
  .facts           list the stored facts
  .retract FACT    delete a stored fact, e.g. .retract parent(ann, mona)
  .load FILE       read rules and facts from a Datalog file
  .save FILE       write the current rules and facts to a file
  .clear           drop all rules and facts
  .help            this text
  .quit            leave"""


class Repl:
    """State + line dispatcher for the interactive shell."""

    def __init__(self):
        self.database = Database()
        self.rules: List = []
        self.method = "auto"
        self.done = False

    # --- public API -----------------------------------------------------

    def execute(self, line: str) -> List[str]:
        """Process one input line; returns the lines to display."""
        line = line.strip()
        if not line or line.startswith("%"):
            return []
        try:
            if line.startswith("."):
                return self._command(line)
            return self._statement(line)
        except ReproError as error:
            return [f"error: {error}"]

    def run(self, stdin=None, stdout=None) -> None:  # pragma: no cover
        import sys

        stdin = stdin or sys.stdin
        stdout = stdout or sys.stdout
        stdout.write("repro deductive shell — .help for commands\n")
        while not self.done:
            stdout.write("dl> ")
            stdout.flush()
            line = stdin.readline()
            if not line:
                break
            for output in self.execute(line):
                stdout.write(output + "\n")

    # --- internals --------------------------------------------------------

    def _program(self, query=None) -> Program:
        return Program(list(self.rules), query)

    def _statement(self, line: str) -> List[str]:
        program = parse_program(line)
        output: List[str] = []
        for rule in program.rules:
            if rule.is_fact:
                added = self.database.add_atom(rule.head)
                output.append("stored." if added else "duplicate.")
            else:
                rule.check_safety()
                self.rules.append(rule)
                output.append("rule added.")
        if program.query is not None:
            output.extend(self._query(program.query))
        return output

    def _query(self, goal) -> List[str]:
        program = self._program(goal)
        variables = [t for t in goal.terms if t.is_variable]
        try:
            query = CSLQuery.from_program(program, database=self.database)
        except NotCSLError:
            query = None
        if query is not None and self.method != "naive" and len(variables) == 1:
            result = solve(query, method=self.method)
            answers = sorted(result.answers, key=repr)
            footer = (f"-- {len(answers)} answer(s), method "
                      f"{result.method}, {result.cost.retrievals} retrievals")
            return [f"{variables[0].name} = {a}" for a in answers] + [footer]
        # Non-CSL programs, ground goals, and multi-variable goals use
        # the generic engine.
        database = self.database.copy()
        tuples = sorted(answer_tuples(program, database), key=repr)
        footer = (f"-- {len(tuples)} answer(s), seminaive, "
                  f"{database.total_cost()} retrievals")
        if not variables:
            return (["true." if tuples else "false."] + [footer])
        lines = []
        for tup in tuples:
            bindings = ", ".join(
                f"{var.name} = {value}" for var, value in zip(variables, tup)
            )
            lines.append(bindings)
        return lines + [footer]

    def _command(self, line: str) -> List[str]:
        parts = line.split(None, 1)
        command = parts[0]
        argument = parts[1].strip() if len(parts) > 1 else ""

        if command in (".quit", ".exit"):
            self.done = True
            return ["bye."]
        if command == ".help":
            return _HELP.splitlines()
        if command == ".method":
            if argument not in _METHODS:
                return [f"unknown method {argument!r}; "
                        f"choose from: {', '.join(_METHODS)}"]
            self.method = argument
            return [f"method = {argument}"]
        if command == ".rules":
            return [str(rule) for rule in self.rules] or ["(no rules)"]
        if command == ".facts":
            lines = []
            for name in self.database.names():
                for tup in sorted(self.database.facts(name), key=repr):
                    rendered = ", ".join(str(v) for v in tup)
                    lines.append(f"{name}({rendered}).")
            return lines or ["(no facts)"]
        if command == ".retract":
            return self._retract(argument)
        if command == ".clear":
            self.database = Database()
            self.rules = []
            return ["cleared."]
        if command == ".load":
            return self._load_file(argument)
        if command == ".save":
            return self._save_file(argument)
        if command == ".analyze":
            return self._analyze(argument)
        if command == ".plan":
            return self._plan(argument)
        if command == ".explain":
            return self._explain(argument)
        return [f"unknown command {command}; try .help"]

    def _load_file(self, path: str) -> List[str]:
        if not path:
            return ["usage: .load FILE"]
        try:
            with open(path) as handle:
                text = handle.read()
        except OSError as error:
            return [f"error: {error}"]
        program = parse_program(text)
        facts = rules = 0
        for rule in program.rules:
            if rule.is_fact:
                self.database.add_atom(rule.head)
                facts += 1
            else:
                rule.check_safety()
                self.rules.append(rule)
                rules += 1
        return [f"loaded {facts} fact(s) and {rules} rule(s) from {path}"]

    def _save_file(self, path: str) -> List[str]:
        if not path:
            return ["usage: .save FILE"]
        from .datalog.io import dump_database

        try:
            with open(path, "w") as handle:
                for rule in self.rules:
                    handle.write(str(rule) + "\n")
                count = dump_database(self.database, handle)
        except OSError as error:
            return [f"error: {error}"]
        return [f"saved {count} fact(s) and {len(self.rules)} rule(s) to {path}"]

    def _retract(self, fact_text: str) -> List[str]:
        from .datalog.parser import parse_atom

        if not fact_text:
            return ["usage: .retract FACT"]
        atom = parse_atom(fact_text.rstrip("."))
        if not atom.is_ground():
            return ["retract needs a ground fact."]
        removed = self.database.remove_fact(
            atom.predicate, *(t.value for t in atom.terms)
        )
        return ["retracted." if removed else "no such fact."]

    def _analyze(self, goal_text: str) -> List[str]:
        from .core.classification import classify_nodes
        from .core.complexity import compute_statistics
        from .datalog.parser import parse_atom

        goal = parse_atom(goal_text)
        query = CSLQuery.from_program(
            self._program(goal), database=self.database
        )
        classification = classify_nodes(query)
        stats = compute_statistics(query)
        return [
            f"class: {classification.graph_class.value}",
            f"nodes: {stats.n_l} magic ({len(classification.single)} single, "
            f"{len(classification.multiple)} multiple, "
            f"{len(classification.recurring)} recurring)",
            f"arcs: m_L={stats.m_l} m_E={stats.m_e} m_R={stats.m_r}, "
            f"i_x={stats.i_x}",
        ]

    def _plan(self, goal_text: str) -> List[str]:
        from .core.explain import explain_evaluation
        from .datalog.parser import parse_atom

        goal = parse_atom(goal_text)
        query = CSLQuery.from_program(
            self._program(goal), database=self.database
        )
        return explain_evaluation(query).splitlines()

    def _explain(self, fact_text: str) -> List[str]:
        from .datalog.parser import parse_atom
        from .datalog.provenance import evaluate_with_provenance

        goal = parse_atom(fact_text)
        if not goal.is_ground():
            return ["explain needs a ground fact."]
        provenance = evaluate_with_provenance(
            self._program(), self.database.copy()
        )
        proof = provenance.proof(
            goal.predicate, tuple(t.value for t in goal.terms)
        )
        return proof.render().splitlines()


def run_repl() -> int:  # pragma: no cover
    Repl().run()
    return 0
