"""The cluster worker: a read-only replica serving one EDB snapshot.

A :class:`ClusterWorkerServer` is a :class:`~repro.server.SolverServer`
with the write path replaced by the cluster control plane:

* client mutations are refused with a structured ``read_only`` error —
  worker state changes only through the front's single-writer path;
* ``apply_delta`` applies one versioned fact delta (the front's PR-6
  maintenance broadcast): the worker checks the delta's ``parent``
  epoch against its own and answers ``{"stale": true}`` on a mismatch
  instead of applying a delta to the wrong state — the front then
  resynchronizes it with a fresh snapshot;
* ``load_snapshot`` swaps in a NEW :class:`SolverService` built from a
  snapshot file.  The swap is a single reference assignment: solves
  already executing keep the service object they started with and
  finish on the old snapshot; every request admitted afterwards sees
  the new epoch.  That is the cluster's invalidation protocol — workers
  pull state, the front never blocks reads on replication.

Both control ops authenticate with the spawn-time fleet token, so a
stray client on the loopback port cannot rewrite a replica.

:func:`worker_main` is the process-backend entrypoint: spawned via
``multiprocessing`` (spawn context), it builds the service from the
snapshot, warms the plan cache, reports its ephemeral port back
through a pipe, and serves until SIGTERM.
"""

from __future__ import annotations

import asyncio
import signal
from typing import Dict, Optional

from ..datalog.parser import parse_program
from ..datalog.program import Program
from ..server.protocol import ProtocolError, ReadOnlyError, decode_value
from ..server.server import SolverServer, _mutation_fields
from ..service import SolverService, import_snapshot, warm_plan_cache


class ClusterWorkerServer(SolverServer):
    """A read-only solve replica under one cluster front."""

    def __init__(
        self,
        service: SolverService,
        token: str,
        epoch: int = 0,
        program: Optional[Program] = None,
        **kwargs,
    ):
        super().__init__(service, program=program, **kwargs)
        self.token = token
        self.cluster_epoch = epoch  # guarded-by: @loop

    # --- the write path is the control plane ---------------------------

    async def _mutate(self, inserts=None, deletes=None):
        raise ReadOnlyError(
            "this is a read-only cluster worker; route mutations to the "
            "cluster front"
        )

    def _check_token(self, params: Dict[str, object]) -> None:
        if params.get("token") != self.token:
            raise ProtocolError("bad or missing cluster token")

    async def _dispatch(self, request: Dict[str, object]):
        op = request["op"]
        params = request.get("params", {})
        if op == "epoch":
            return {
                "epoch": self.cluster_epoch,
                "db_version": self.service.db_version,
            }
        if op == "apply_delta":
            return await self._apply_delta(params)
        if op == "load_snapshot":
            return await self._load_snapshot(params)
        return await super()._dispatch(request)

    async def _apply_delta(self, params: Dict[str, object]):
        self._check_token(params)
        parent = params.get("parent")
        epoch = params.get("epoch")
        if not isinstance(parent, int) or not isinstance(epoch, int):
            raise ProtocolError("apply_delta needs integer 'parent'/'epoch'")
        if parent != self.cluster_epoch:
            # A missed or reordered delta: applying it here would fork
            # the replica.  Report staleness; the front resynchronizes.
            return {"stale": True, "epoch": self.cluster_epoch}
        inserts = _delta_param(params, "inserts")
        deletes = _delta_param(params, "deletes")
        service = self.service
        loop = asyncio.get_running_loop()
        result = await loop.run_in_executor(
            self._executor,
            lambda: service.mutate(inserts=inserts, deletes=deletes),
        )
        self.cluster_epoch = epoch
        return {
            "stale": False,
            "epoch": epoch,
            **_mutation_fields(result),
        }

    async def _load_snapshot(self, params: Dict[str, object]):
        self._check_token(params)
        path = params.get("path")
        if not isinstance(path, str) or not path:
            raise ProtocolError("load_snapshot needs a snapshot 'path'")
        loop = asyncio.get_running_loop()
        # File read + service build off the loop; in-flight solves keep
        # executing on the service object they already hold.
        snapshot = await loop.run_in_executor(
            self._executor, lambda: _build_service(path)
        )
        self.service = snapshot.service
        self.cluster_epoch = snapshot.epoch
        return {
            "epoch": snapshot.epoch,
            "db_version": snapshot.service.db_version,
        }

    # --- solves pin the service they started on ------------------------

    async def _execute_batch(self, key, sources):
        program_key, method = key
        program = self._programs[program_key]
        # Bind the CURRENT service before handing off: a load_snapshot
        # that lands mid-execution must not switch a running batch to
        # the new state halfway through.
        service = self.service
        loop = asyncio.get_running_loop()
        result = await loop.run_in_executor(
            self._executor,
            lambda: service.solve_batch(program, sources, method=method),
        )
        return result.answers

    # --- reporting ------------------------------------------------------

    def health_payload(self) -> Dict[str, object]:
        payload = super().health_payload()
        payload["role"] = "worker"
        payload["epoch"] = self.cluster_epoch
        return payload

    def metrics_snapshot(self) -> Dict[str, object]:
        snapshot = super().metrics_snapshot()
        snapshot["cluster"] = {
            "role": "worker",
            "epoch": self.cluster_epoch,
        }
        return snapshot


def _delta_param(
    params: Dict[str, object], field: str
) -> Dict[str, list]:
    raw = params.get(field) or {}
    if not isinstance(raw, dict):
        raise ProtocolError(f"'{field}' must be an object of fact rows")
    return {
        name: [tuple(decode_value(value) for value in row) for row in rows]
        for name, rows in raw.items()
    }


def _build_service(snapshot_path: str):
    """Import a snapshot and warm its plan cache (shared by spawn and
    the resynchronization path)."""
    snapshot = import_snapshot(snapshot_path)
    if snapshot.program_text:
        warm_plan_cache(snapshot.service, [snapshot.program_text])
    return snapshot


def _parse_default_program(text: Optional[str]) -> Optional[Program]:
    if not text:
        return None
    parsed = parse_program(text)
    return Program(
        [rule for rule in parsed.rules if not rule.is_fact], parsed.query
    )


async def _serve_worker(
    snapshot_path: str, token: str, pipe, host: str
) -> None:
    snapshot = _build_service(snapshot_path)
    server = ClusterWorkerServer(
        snapshot.service,
        token,
        epoch=snapshot.epoch,
        program=_parse_default_program(snapshot.program_text),
        host=host,
        port=0,
    )
    await server.start()
    stop_event = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop_event.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    pipe.send(server.port)
    pipe.close()
    try:
        await stop_event.wait()
    finally:
        await server.stop()


def worker_main(
    snapshot_path: str, token: str, pipe, host: str = "127.0.0.1"
) -> None:
    """Process-backend entrypoint (multiprocessing spawn target)."""
    asyncio.run(_serve_worker(snapshot_path, token, pipe, host))
