"""Worker lifecycle: spawn, health, warm-standby promotion.

The fleet is the synchronous half of the cluster front.  Every method
here blocks (process spawns, pipe handshakes, control-plane round
trips, file I/O), so the front calls into it via ``run_in_executor``
and keeps its event loop free.  Two backends share one interface:

* ``"process"`` — each worker is a ``multiprocessing`` (spawn context)
  child running :func:`~repro.cluster.worker.worker_main`; it builds
  its service from the snapshot file and reports its ephemeral port
  back through a pipe.  This is the production topology: N processes,
  N GILs, real parallelism.
* ``"thread"`` — each worker is a :class:`ClusterWorkerServer` on a
  :class:`~repro.server.ServerThread` inside this process.  Same wire
  protocol, same snapshot/epoch machinery, a fraction of the startup
  cost — what the fast test tier uses.

Workers are spawned in two roles.  **Active** workers own arcs of the
routing ring and serve solves.  **Warm standbys** hold the same
snapshot and follow the same delta broadcasts but get no traffic —
when an active dies, :meth:`WorkerFleet.mark_failed` promotes the
oldest standby in one step (no snapshot load on the failover path; its
state is already current).

Locking: :class:`WorkerFleet` serializes membership under
``WorkerFleet._lock`` and per-worker state lives under
``WorkerHandle._lock``; the fleet registers a handle while holding its
own lock, so the documented lock order is ``WorkerFleet._lock ->
WorkerHandle._lock`` (pinned by the concurrency self-analysis — see
tests/test_concurrency_analysis.py).  Handles never call back into the
fleet, so the reverse edge cannot form.
"""

from __future__ import annotations

import multiprocessing
import os
import secrets
import shutil
import tempfile
import threading
from typing import Dict, List, Optional, Tuple

from ..server.client import SolverClient
from ..server.protocol import encode_value
from ..server.server import ServerThread
from ..service import export_snapshot
from ..service.service import SolverService
from .worker import (
    ClusterWorkerServer,
    _build_service,
    _parse_default_program,
    worker_main,
)

#: How long to wait for a spawned worker's port handshake.
SPAWN_TIMEOUT = 60.0


class WorkerHandle:
    """One worker's endpoint, role, and liveness, under its own lock."""

    def __init__(
        self,
        worker_id: str,
        role: str,
        backend: str,
        process=None,
        thread: Optional[ServerThread] = None,
    ):
        self._lock = threading.RLock()
        self.worker_id = worker_id
        self.backend = backend
        self.process = process
        self.thread = thread
        self.host = "127.0.0.1"
        self.role = role  # guarded-by: _lock
        self.port: Optional[int] = None  # guarded-by: _lock
        self.client: Optional[SolverClient] = None  # guarded-by: _lock
        self.healthy = False  # guarded-by: _lock
        self.epoch = 0  # guarded-by: _lock
        self.stats: Dict[str, object] = {}  # guarded-by: _lock

    def attach(self, port: int, client: SolverClient, epoch: int) -> None:
        """Bind the spawned worker's endpoint; called once per spawn."""
        with self._lock:
            self.port = port
            self.client = client
            self.epoch = epoch
            self.healthy = True

    def promote(self) -> None:
        with self._lock:
            self.role = "active"

    def note_epoch(self, epoch: int) -> None:
        with self._lock:
            self.epoch = epoch

    def mark_unhealthy(self) -> None:
        with self._lock:
            self.healthy = False

    def mark_healthy(self, epoch: int) -> None:
        with self._lock:
            self.healthy = True
            self.epoch = epoch

    def endpoint(self) -> Tuple[str, int]:
        with self._lock:
            if self.port is None:
                raise ConnectionError(
                    f"worker {self.worker_id} has no endpoint"
                )
            return self.host, self.port

    def control(self, op: str, params: Optional[Dict] = None):
        """One control-plane round trip (the request runs outside the
        handle lock — only the client reference is read under it)."""
        with self._lock:
            client = self.client
        if client is None:
            raise ConnectionError(f"worker {self.worker_id} is detached")
        return client.request(op, params)

    def alive(self) -> bool:
        """Backend liveness (process exists / thread attached); the
        wire-level check is the fleet's health probe."""
        if self.process is not None:
            return self.process.is_alive()
        return self.thread is not None

    def describe(self) -> Dict[str, object]:
        with self._lock:
            return {
                "worker_id": self.worker_id,
                "role": self.role,
                "backend": self.backend,
                "host": self.host,
                "port": self.port,
                "healthy": self.healthy,
                "epoch": self.epoch,
            }

    def close(self) -> None:
        with self._lock:
            client = self.client
            self.client = None
            self.healthy = False
        if client is not None:
            try:
                client.close()
            except OSError:
                pass
        if self.process is not None:
            self.process.terminate()
            self.process.join(timeout=10)
        elif self.thread is not None:
            try:
                self.thread.stop(grace=1.0)
            except Exception:  # noqa: BLE001 - already going away
                pass

    def __repr__(self):
        return f"WorkerHandle({self.worker_id}, {self.backend})"


class WorkerFleet:
    """Spawn and supervise the worker set behind one cluster front."""

    def __init__(
        self,
        backend: str = "process",
        token: Optional[str] = None,
        control_timeout: float = 30.0,
    ):
        if backend not in ("process", "thread"):
            raise ValueError(
                f"unknown fleet backend {backend!r} "
                "(expected 'process' or 'thread')"
            )
        self._lock = threading.RLock()
        self.backend = backend
        #: Shared secret for the workers' control ops; generated per
        #: fleet so nothing else on the loopback can rewrite a replica.
        self.token = token or secrets.token_hex(16)
        self.control_timeout = control_timeout
        self.snapshot_dir: Optional[str] = None  # guarded-by: _lock
        self.snapshot_path: Optional[str] = None  # guarded-by: _lock
        self._handles: Dict[str, WorkerHandle] = {}  # guarded-by: _lock
        self._actives: List[str] = []  # guarded-by: _lock
        self._standbys: List[str] = []  # guarded-by: _lock
        self._spawned = 0  # guarded-by: _lock
        self.failovers = 0  # guarded-by: _lock
        #: The handle currently being registered (typed slot so the
        #: lock-order analysis resolves the attach() call below).
        self._spawning: Optional[WorkerHandle] = None  # guarded-by: _lock

    # --- spawning -------------------------------------------------------

    def spawn(
        self,
        service: SolverService,
        program_text: Optional[str],
        workers: int,
        standbys: int = 0,
    ) -> List[str]:
        """Export one snapshot and bring up the whole fleet from it."""
        if workers < 1:
            raise ValueError("a cluster needs at least one active worker")
        path = self.write_snapshot(service, program_text)
        epoch = service.db_version
        for _ in range(workers):
            self._spawn_one("active", path, epoch)
        for _ in range(standbys):
            self._spawn_one("standby", path, epoch)
        return self.active_ids()

    def write_snapshot(
        self, service: SolverService, program_text: Optional[str]
    ) -> str:
        """(Re-)export the authoritative EDB; atomic, so a concurrent
        reader sees either the old file or the new one."""
        with self._lock:
            if self.snapshot_dir is None:
                self.snapshot_dir = tempfile.mkdtemp(prefix="repro-cluster-")
                self.snapshot_path = os.path.join(
                    self.snapshot_dir, "snapshot.json"
                )
            path = self.snapshot_path
        export_snapshot(service, path, program_text=program_text)
        return path

    def _spawn_one(self, role: str, snapshot_path: str, epoch: int) -> str:
        with self._lock:
            worker_id = f"worker-{self._spawned}"
            self._spawned += 1
        process = None
        thread = None
        if self.backend == "process":
            port, process = _spawn_process(snapshot_path, self.token)
        else:
            port, thread = _spawn_thread(snapshot_path, self.token)
        client = SolverClient(
            port=port, timeout=self.control_timeout, failover_retries=0
        )
        with self._lock:
            self._spawning = WorkerHandle(
                worker_id, role, self.backend, process=process, thread=thread
            )
            self._spawning.attach(port, client, epoch)
            self._handles[worker_id] = self._spawning
            if role == "active":
                self._actives.append(worker_id)
            else:
                self._standbys.append(worker_id)
        return worker_id

    # --- membership -----------------------------------------------------

    def active_ids(self) -> List[str]:
        with self._lock:
            return list(self._actives)

    def endpoints(self) -> Dict[str, Tuple[str, int]]:
        """``worker_id -> (host, port)`` for the ACTIVE set."""
        with self._lock:
            return {
                worker_id: self._handles[worker_id].endpoint()
                for worker_id in self._actives
            }

    def _all_handles(self) -> List[WorkerHandle]:
        with self._lock:
            return [
                self._handles[worker_id]
                for worker_id in self._actives + self._standbys
            ]

    def mark_failed(self, worker_id: str) -> Dict[str, object]:
        """Remove a dead worker; promote the oldest standby if one is
        waiting.  Idempotent: a second report of the same worker is a
        no-op (``removed`` False), so concurrent failure detections
        (shard error + health probe) cannot double-promote."""
        with self._lock:
            handle = self._handles.pop(worker_id, None)
            if handle is None:
                return {"removed": False, "promoted": None}
            if worker_id in self._actives:
                self._actives.remove(worker_id)
            if worker_id in self._standbys:
                self._standbys.remove(worker_id)
            self.failovers += 1
            promoted = None
            if self._standbys:
                promoted = self._standbys.pop(0)
                self._handles[promoted].promote()
                self._actives.append(promoted)
        handle.close()
        return {"removed": True, "promoted": promoted}

    # --- control plane --------------------------------------------------

    def broadcast_delta(
        self,
        epoch: int,
        parent: int,
        inserts: Optional[Dict[str, List[Tuple]]],
        deletes: Optional[Dict[str, List[Tuple]]],
    ) -> Tuple[List[str], List[str]]:
        """Send one versioned delta to every worker (actives AND
        standbys — standbys stay warm by following the same stream).

        Returns ``(stale_ids, failed_ids)``: stale workers answered with
        an epoch mismatch and need a snapshot resync; failed workers
        did not answer at all and need failover.
        """
        params = {
            "token": self.token,
            "epoch": epoch,
            "parent": parent,
            "inserts": _encode_rows(inserts),
            "deletes": _encode_rows(deletes),
        }
        stale: List[str] = []
        failed: List[str] = []
        for handle in self._all_handles():
            try:
                result = handle.control("apply_delta", params)
            except (ConnectionError, OSError):
                handle.mark_unhealthy()
                failed.append(handle.worker_id)
                continue
            if result.get("stale"):
                stale.append(handle.worker_id)
            else:
                handle.note_epoch(epoch)
        return stale, failed

    def resync(self, worker_id: str) -> int:
        """Push the current snapshot file to one stale worker."""
        with self._lock:
            handle = self._handles.get(worker_id)
            path = self.snapshot_path
        if handle is None or path is None:
            raise ConnectionError(f"no worker {worker_id} to resync")
        result = handle.control(
            "load_snapshot", {"token": self.token, "path": path}
        )
        epoch = int(result["epoch"])
        handle.note_epoch(epoch)
        return epoch

    def check_health(self) -> List[Dict[str, object]]:
        """Probe every worker over the wire; returns their reports.

        A worker is unhealthy when its backend died (process gone) or
        the ``epoch`` probe fails; the caller decides on failover.
        """
        reports: List[Dict[str, object]] = []
        for handle in self._all_handles():
            if not handle.alive():
                handle.mark_unhealthy()
            else:
                try:
                    result = handle.control("epoch")
                    handle.mark_healthy(int(result["epoch"]))
                except (ConnectionError, OSError):
                    handle.mark_unhealthy()
            reports.append(handle.describe())
        return reports

    def describe(self) -> List[Dict[str, object]]:
        return [handle.describe() for handle in self._all_handles()]

    def stop(self) -> None:
        """Tear the fleet down: close every worker, drop the snapshot."""
        with self._lock:
            handles = list(self._handles.values())
            self._handles.clear()
            self._actives.clear()
            self._standbys.clear()
            snapshot_dir = self.snapshot_dir
            self.snapshot_dir = None
            self.snapshot_path = None
        for handle in handles:
            handle.close()
        if snapshot_dir is not None:
            shutil.rmtree(snapshot_dir, ignore_errors=True)

    def __repr__(self):
        with self._lock:
            return (
                f"WorkerFleet({self.backend}, "
                f"actives={len(self._actives)}, "
                f"standbys={len(self._standbys)})"
            )


def _encode_rows(deltas: Optional[Dict[str, List[Tuple]]]) -> Dict:
    if not deltas:
        return {}
    return {
        name: [[encode_value(value) for value in row] for row in rows]
        for name, rows in deltas.items()
    }


def _spawn_process(snapshot_path: str, token: str):
    """Spawn-context child + pipe handshake for the bound port."""
    context = multiprocessing.get_context("spawn")
    parent_conn, child_conn = context.Pipe(duplex=False)
    process = context.Process(
        target=worker_main,
        args=(snapshot_path, token, child_conn),
        daemon=True,
    )
    process.start()
    child_conn.close()
    if not parent_conn.poll(SPAWN_TIMEOUT):
        process.terminate()
        raise RuntimeError(
            f"cluster worker did not report a port within {SPAWN_TIMEOUT}s"
        )
    port = parent_conn.recv()
    parent_conn.close()
    return int(port), process


def _spawn_thread(snapshot_path: str, token: str):
    """In-process worker on its own event-loop thread (test backend)."""
    snapshot = _build_service(snapshot_path)
    server = ClusterWorkerServer(
        snapshot.service,
        token,
        epoch=snapshot.epoch,
        program=_parse_default_program(snapshot.program_text),
    )
    thread = ServerThread(server)
    thread.start()
    return server.port, thread
