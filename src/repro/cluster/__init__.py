"""Multi-process sharded serving over replicated EDB snapshots.

One front process owns admission, coalescing, and the single write
path; N worker processes each hold a read-only snapshot of the EDB
plus their own plan cache, and serve the solve shards the front routes
to them by consistent-hashing the **source** (stable placement keeps
worker caches warm; failover moves only the dead worker's arcs).
Warm standbys follow the same delta broadcasts and are promoted in one
step when an active dies.

Public surface::

    from repro.cluster import ClusterFront

    front = ClusterFront(service, program, workers=4, standbys=1)
    await front.start()          # spawns the fleet, then accepts
    ...                          # clients connect exactly as to a
    await front.stop()           # single SolverServer

The replication protocol (epochs, versioned deltas, snapshot resync)
is documented in docs/serving.md ("Cluster topology"); the snapshot
file format lives in :mod:`repro.service.snapshot`.
"""

from .fleet import WorkerFleet, WorkerHandle
from .front import ClusterFront
from .routing import DEFAULT_REPLICAS, ConsistentHashRing
from .worker import ClusterWorkerServer, worker_main

__all__ = [
    "DEFAULT_REPLICAS",
    "ClusterFront",
    "ClusterWorkerServer",
    "ConsistentHashRing",
    "WorkerFleet",
    "WorkerHandle",
    "worker_main",
]
