"""The cluster front: admission, routing, replication, failover.

:class:`ClusterFront` subclasses :class:`~repro.server.SolverServer`,
so clients speak to a cluster exactly as they speak to a single server
— same wire protocol, same coalescing window, same graceful drain.
What changes is what happens after coalescing:

* **reads** — :meth:`_execute_batch` shards each coalesced batch by
  source over a consistent-hash ring and fans the shards out to the
  active workers' pipelined async clients.  A shard whose worker died
  triggers failover (promote a standby, rebuild the ring) and ONE
  re-route of just the failed sources; accepted requests are never
  dropped by a worker death.
* **writes** — :meth:`_mutate` is the single-writer path: apply to the
  front's authoritative service (its ``db_version`` IS the cluster
  epoch), then broadcast the versioned delta to every worker under one
  write lock.  A worker that answers ``stale`` missed an epoch and is
  resynchronized from a fresh snapshot; a worker that does not answer
  is failed over.  Reads keep flowing throughout — workers apply
  deltas between solves, and in-flight solves finish on the snapshot
  they started with.
* **supervision** — a background health loop probes every worker (and
  the warm standbys) each interval and fails over the dead ones;
  ``/health`` and ``/metrics`` aggregate the whole fleet.

The front's own service stays authoritative so a cluster can always be
rebuilt from it; it must be EAGER (``maintenance_batching=False``) —
a deferred local apply would leave ``db_version`` behind the epoch the
workers need to follow.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional

from ..server.client import AsyncSolverClient
from ..server.protocol import WorkerFailedError
from ..server.server import SolverServer
from ..service.service import SolverService
from .fleet import WorkerFleet
from .routing import ConsistentHashRing


class ClusterFront(SolverServer):
    """One listener, N worker processes, single-writer replication."""

    def __init__(
        self,
        service: SolverService,
        program=None,
        workers: int = 2,
        standbys: int = 0,
        backend: str = "process",
        health_interval: float = 1.0,
        **kwargs,
    ):
        if service.maintenance_batching:
            raise ValueError(
                "the cluster front's service must be eager "
                "(maintenance_batching=False): its db_version is the "
                "cluster epoch and must advance with every applied delta"
            )
        super().__init__(service, program=program, **kwargs)
        self.workers = workers
        self.standbys = standbys
        self.health_interval = health_interval
        self.fleet = WorkerFleet(backend=backend)
        self._ring = ConsistentHashRing(())  # guarded-by: @loop
        self._clients: Dict[str, AsyncSolverClient] = {}  # guarded-by: @loop
        self._worker_reports: List[Dict] = []  # guarded-by: @loop
        self._health_task: Optional[asyncio.Task] = None  # guarded-by: @loop
        self._snapshot_text: Optional[str] = None  # guarded-by: @loop
        self._write_lock = asyncio.Lock()
        self.failovers = 0  # guarded-by: @loop
        self.shard_retries = 0  # guarded-by: @loop

    # --- lifecycle ------------------------------------------------------

    async def start(self) -> "ClusterFront":
        """Bring up the fleet FIRST, then start accepting clients."""
        loop = asyncio.get_running_loop()
        fleet = self.fleet
        service = self.service
        text = (
            self._program_texts.get(self._default_key)
            if self._default_key is not None
            else None
        )
        self._snapshot_text = text
        workers, standbys = self.workers, self.standbys
        await loop.run_in_executor(
            None, lambda: fleet.spawn(service, text, workers, standbys)
        )
        await self._refresh_clients()
        self._worker_reports = await loop.run_in_executor(
            None, fleet.describe
        )
        self._health_task = asyncio.ensure_future(self._health_loop())
        await super().start()
        return self

    async def stop(self, grace: float = 5.0) -> None:
        """Drain the front while the workers are still up (in-flight
        shards need them), THEN tear the fleet down."""
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        await super().stop(grace)
        for client in self._clients.values():
            await client.close()
        self._clients = {}
        fleet = self.fleet
        await asyncio.get_running_loop().run_in_executor(None, fleet.stop)

    # --- routing --------------------------------------------------------

    async def _refresh_clients(self) -> None:
        """Reconcile the async client set and the ring with the fleet's
        current active membership."""
        loop = asyncio.get_running_loop()
        fleet = self.fleet
        endpoints = await loop.run_in_executor(None, fleet.endpoints)
        for worker_id in list(self._clients):
            if worker_id not in endpoints:
                client = self._clients.pop(worker_id)
                await client.close()
        for worker_id, (host, port) in endpoints.items():
            if worker_id not in self._clients:
                # The front does its own failover (reshard + standby
                # promotion); a client-level blind retry against the
                # same dead worker would only mask it.
                self._clients[worker_id] = await AsyncSolverClient.connect(
                    host=host, port=port, failover_retries=0
                )
        self._ring = ConsistentHashRing(tuple(endpoints))

    async def _handle_worker_failure(self, worker_id: str) -> None:
        loop = asyncio.get_running_loop()
        fleet = self.fleet
        outcome = await loop.run_in_executor(
            None, lambda: fleet.mark_failed(worker_id)
        )
        if outcome["removed"]:
            self.failovers += 1
        await self._refresh_clients()

    # --- reads: shard, fan out, re-route on failure ---------------------

    async def _execute_batch(self, key, sources):
        program_key, method = key
        text = self._program_texts.get(program_key)
        answers: Dict[object, frozenset] = {}
        remaining = list(sources)
        for attempt in (0, 1):
            ring = self._ring
            if len(ring) == 0:
                raise WorkerFailedError("no live workers in the cluster")
            shards = ring.shard(remaining)
            outcomes = await asyncio.gather(
                *(
                    self._solve_shard(worker_id, shard, method, text)
                    for worker_id, shard in shards.items()
                ),
                return_exceptions=True,
            )
            failed_workers: List[str] = []
            remaining = []
            for (worker_id, shard), outcome in zip(
                shards.items(), outcomes
            ):
                if isinstance(outcome, (ConnectionError, WorkerFailedError)):
                    failed_workers.append(worker_id)
                    remaining.extend(shard)
                elif isinstance(outcome, BaseException):
                    # A structured solve error (unsafe query, deadline,
                    # ...) is the client's answer, not a failover.
                    raise outcome
                else:
                    answers.update(outcome)
            if not remaining:
                return answers
            for worker_id in failed_workers:
                await self._handle_worker_failure(worker_id)
            if attempt == 0:
                self.shard_retries += 1
        raise WorkerFailedError(
            f"{len(remaining)} sources unserved after failover retry"
        )

    async def _solve_shard(self, worker_id, shard, method, text):
        client = self._clients.get(worker_id)
        if client is None:
            raise ConnectionError(f"no client for worker {worker_id}")
        return await client.solve_batch(shard, method=method, program=text)

    # --- writes: the single-writer replication path ---------------------

    async def _mutate(self, inserts=None, deletes=None):
        loop = asyncio.get_running_loop()
        service = self.service
        fleet = self.fleet
        async with self._write_lock:
            parent = service.db_version
            result = await loop.run_in_executor(
                self._executor,
                lambda: service.mutate(inserts=inserts, deletes=deletes),
            )
            epoch = result.db_version
            if epoch == parent:
                return result  # no-op mutation: nothing to replicate
            applied_inserts = inserts or {}
            applied_deletes = deletes or {}
            stale, failed = await loop.run_in_executor(
                None,
                lambda: fleet.broadcast_delta(
                    epoch, parent, applied_inserts, applied_deletes
                ),
            )
            if stale:
                text = self._snapshot_text
                await loop.run_in_executor(
                    None, lambda: fleet.write_snapshot(service, text)
                )
                for worker_id in stale:
                    try:
                        await loop.run_in_executor(
                            None,
                            lambda w=worker_id: fleet.resync(w),
                        )
                    except (ConnectionError, OSError):
                        failed.append(worker_id)
        for worker_id in failed:
            await self._handle_worker_failure(worker_id)
        return result

    # --- supervision ----------------------------------------------------

    async def _health_loop(self) -> None:
        loop = asyncio.get_running_loop()
        fleet = self.fleet
        while True:
            await asyncio.sleep(self.health_interval)
            reports = await loop.run_in_executor(None, fleet.check_health)
            self._worker_reports = reports
            for report in reports:
                if not report["healthy"]:
                    await self._handle_worker_failure(report["worker_id"])

    # --- aggregated reporting -------------------------------------------

    def health_payload(self) -> Dict[str, object]:
        payload = super().health_payload()
        payload["role"] = "front"
        payload["epoch"] = self.service.db_version
        payload["workers"] = list(self._worker_reports)
        active = len(self._ring)
        payload["active_workers"] = active
        if payload["status"] == "ok" and active < self.workers:
            payload["status"] = "degraded"
        return payload

    def metrics_snapshot(self) -> Dict[str, object]:
        snapshot = super().metrics_snapshot()
        snapshot["cluster"] = {
            "role": "front",
            "epoch": self.service.db_version,
            "backend": self.fleet.backend,
            "configured_workers": self.workers,
            "configured_standbys": self.standbys,
            "active_workers": len(self._ring),
            "failovers": self.failovers,
            "shard_retries": self.shard_retries,
            "workers": list(self._worker_reports),
        }
        return snapshot

    def __repr__(self):
        return (
            f"ClusterFront({self.host}:{self.port}, "
            f"workers={len(self._ring)}/{self.workers}, "
            f"failovers={self.failovers})"
        )
