"""Consistent-hash routing of solve sources onto cluster workers.

The front shards a ``solve_batch`` by **source**: every source is
routed to one worker, so a worker's plan cache and materialized pair
sets see a stable slice of the keyspace (the same source always lands
on the same worker while membership is stable).  Consistent hashing
keeps failover cheap: when a worker dies, only the ring arcs it owned
move to other workers — every other source keeps its placement, so the
surviving workers' caches stay warm.

The ring is immutable — membership changes build a new ring (the front
swaps one reference on its event loop), which keeps the routing state
trivially safe to read from concurrent request handlers.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple

#: Virtual nodes per worker: smooths the arc distribution so K workers
#: each own close to 1/K of the keyspace.
DEFAULT_REPLICAS = 64


def _position(token: str) -> int:
    """A stable 64-bit ring position (md5 is placement, not security)."""
    digest = hashlib.md5(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ConsistentHashRing:
    """An immutable hash ring over a set of worker ids."""

    def __init__(
        self,
        members: Sequence[str],
        replicas: int = DEFAULT_REPLICAS,
    ):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.members: Tuple[str, ...] = tuple(sorted(set(members)))
        self.replicas = replicas
        points: List[Tuple[int, str]] = []
        for member in self.members:
            for replica in range(replicas):
                points.append((_position(f"{member}#{replica}"), member))
        points.sort()
        self._points = [position for position, _member in points]
        self._owners = [member for _position, member in points]

    def worker_for(self, source) -> str:
        """The worker owning ``source``'s ring position."""
        if not self.members:
            raise LookupError("hash ring has no members")
        position = _position(repr(source))
        index = bisect.bisect_right(self._points, position)
        if index == len(self._owners):
            index = 0  # wrap past the highest point
        return self._owners[index]

    def shard(self, sources: Sequence) -> Dict[str, List]:
        """Partition ``sources`` by owner, preserving per-shard order.

        Duplicate sources stay duplicated inside their shard — the
        service layer dedupes, and answer maps are keyed by source, so
        the merge is unaffected either way.
        """
        shards: Dict[str, List] = {}
        for source in sources:
            shards.setdefault(self.worker_for(source), []).append(source)
        return shards

    def __len__(self) -> int:
        return len(self.members)

    def __repr__(self):
        return (
            f"ConsistentHashRing({len(self.members)} members, "
            f"{self.replicas} replicas)"
        )
