"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything the package raises with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DatalogSyntaxError(ReproError):
    """Raised by the parser on malformed Datalog source text.

    Carries the (1-based) line and column of the offending token when
    available so callers can point users at the exact location.
    """

    def __init__(self, message, line=None, column=None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(message + location)
        self.line = line
        self.column = column


class SafetyError(ReproError):
    """Raised when a rule or program violates range restriction / safety."""


class StratificationError(ReproError):
    """Raised when a program with negation admits no stratification."""


class EvaluationError(ReproError):
    """Raised for runtime evaluation failures (unknown predicates, etc.)."""


class UnsafeQueryError(EvaluationError):
    """Raised when a fixpoint computation is detected to diverge.

    The counting method is unsafe on cyclic magic graphs (Section 2 of the
    paper): its counting-set fixpoint never terminates.  Engines that can
    diverge accept an iteration budget and raise this error when the budget
    is exhausted, instead of looping forever.
    """


class MaintenanceError(EvaluationError):
    """Raised when incremental maintenance cannot (or must not) proceed.

    Signals that a database/program pair is outside the supported
    maintenance fragment (e.g. IDB relations hold facts the rules do not
    derive) or that the maintained counting state became inconsistent.
    Callers treat this as "fall back to recomputation", never as
    "silently keep a possibly-wrong model".
    """


class NotCSLError(ReproError):
    """Raised when a Datalog program is not a canonical strongly linear query."""


class MethodConditionError(ReproError):
    """Raised when reduced sets violate the Theorem 1 / Theorem 2 conditions."""
