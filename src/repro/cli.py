"""Command-line interface.

The main subcommands, all operating on textual Datalog files::

    python -m repro solve   program.dl [--facts facts.dl] [--method auto]
    python -m repro batch   program.dl [--facts facts.dl] --sources a,b,c
    python -m repro serve   program.dl [--facts facts.dl] [--port 7411] [--workers N]
    python -m repro analyze program.dl [--facts facts.dl] [--all]
    python -m repro rewrite program.dl [--kind magic|supplementary|counting|mc]
    python -m repro optimize program.dl [--rewrite mc] [--format sarif]

``solve`` answers the program's query goal (``?- p(a, Y).``) with any of
the paper's methods; ``batch`` answers the same query shape for many
bound constants through the plan-caching solver service, sharing the
reachability work across sources; ``serve`` exposes that service over
the NDJSON/TCP protocol with request coalescing (see ``docs/
serving.md``); ``analyze`` prints the magic-graph diagnosis (node
classes, statistics, reduced-set sizes per strategy, predicted costs);
``rewrite`` prints a rewritten program.  Facts may live in the program
file itself (ground bodiless rules) or in a separate facts file.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.classification import classify_nodes
from .core.complexity import all_method_predictions, compute_statistics
from .core.csl import CSLQuery
from .core.program_rewrite import magic_counting_program
from .core.reduced_sets import Mode, Strategy
from .core.solver import solve
from .core.step1 import compute_reduced_sets
from .datalog.counting_rewrite import counting_rewrite
from .datalog.database import Database
from .datalog.magic_rewrite import magic_rewrite
from .datalog.parser import parse_program
from .datalog.program import Program
from .datalog.supplementary import supplementary_magic_rewrite
from .errors import ReproError

_STRATEGIES = {s.value: s for s in Strategy}
_MODES = {m.value: m for m in Mode}


def _load(program_path: str, facts_path: Optional[str]):
    """Parse the program file; split ground facts into a Database."""
    with open(program_path) as handle:
        program = parse_program(handle.read())
    database = Database()
    rules = []
    for rule in program.rules:
        if rule.is_fact:
            database.add_atom(rule.head)
        else:
            rules.append(rule)
    program = Program(rules, program.query)
    if facts_path is not None:
        with open(facts_path) as handle:
            facts_program = parse_program(handle.read())
        for rule in facts_program.rules:
            if not rule.is_fact:
                raise ReproError(
                    f"facts file contains a non-fact rule: {rule}"
                )
            database.add_atom(rule.head)
    return program, database


def _extract_query(program: Program, database: Database) -> CSLQuery:
    return CSLQuery.from_program(program, database=database)


def cmd_solve(args) -> int:
    program, database = _load(args.program, args.facts)
    query = _extract_query(program, database)
    kwargs = {}
    if args.method == "magic_counting":
        kwargs["strategy"] = _STRATEGIES[args.strategy]
        kwargs["mode"] = _MODES[args.mode]
    result = solve(query, method=args.method, **kwargs)
    for answer in sorted(result.answers, key=repr):
        print(answer)
    print(f"-- method: {result.method}", file=sys.stderr)
    print(f"-- answers: {len(result.answers)}", file=sys.stderr)
    print(f"-- tuple retrievals: {result.cost.retrievals}", file=sys.stderr)
    return 0


def _parse_source_token(token: str):
    """A CLI source constant: integer when it reads as one, else text.

    The Datalog parser stores numeric constants as ints, so ``--sources
    1,2,foo`` must probe the database with ``1``, not ``"1"``.
    """
    try:
        return int(token)
    except ValueError:
        return token


def cmd_batch(args) -> int:
    from .service import SolverService

    program, database = _load(args.program, args.facts)
    service = SolverService(database)
    sources = []
    if args.sources:
        sources.extend(
            _parse_source_token(token.strip())
            for token in args.sources.split(",")
            if token.strip()
        )
    if args.sources_file:
        with open(args.sources_file) as handle:
            sources.extend(
                _parse_source_token(line.strip())
                for line in handle
                if line.strip()
            )
    result = service.solve_batch(
        program, sources or None, method=args.method
    )
    for source in sorted(result.answers, key=repr):
        for answer in sorted(result.answers[source], key=repr):
            print(f"{source}\t{answer}")
    goals = len(result.answers)
    print(f"-- method: {result.method}", file=sys.stderr)
    print(f"-- goals: {goals}", file=sys.stderr)
    print(
        f"-- plan: {result.plan.fingerprint} "
        f"({'cache hit' if result.cache_hit else 'compiled'})",
        file=sys.stderr,
    )
    print(f"-- tuple retrievals: {result.cost.retrievals}", file=sys.stderr)
    for phase, retrievals in sorted(result.metrics.items()):
        if phase.startswith("phase:"):
            print(f"-- {phase}: {retrievals}", file=sys.stderr)
    if goals:
        print(
            f"-- retrievals/goal: {result.cost.retrievals / goals:.1f}",
            file=sys.stderr,
        )
    return 0


def cmd_serve(args) -> int:
    """Serve the program over NDJSON/TCP with request coalescing."""
    from .server import SolverServer
    from .service import SolverService

    program, database = _load(args.program, args.facts)
    service = SolverService(database, plan_cache_size=args.plan_cache_size)
    common = dict(
        program=program,
        host=args.host,
        port=args.port,
        window_ms=args.window_ms,
        max_batch=args.max_batch,
        max_pending=args.max_pending,
        default_deadline_ms=args.deadline_ms,
        executor_workers=args.executor_threads,
    )
    if args.workers > 0:
        from .cluster import ClusterFront

        server = ClusterFront(
            service,
            workers=args.workers,
            standbys=args.standbys,
            **common,
        )
    else:
        if args.standbys:
            print(
                "--standbys needs --workers N (single-process mode)",
                file=sys.stderr,
            )
            return 2
        server = SolverServer(service, **common)
    return server.run()


def _render_cost_report(report) -> None:
    """Human-readable rendering of a cost-analysis report."""
    print(f"goal: {report.goal}")
    for diagnostic in report.diagnostics:
        print(diagnostic)
    certificate = report.certificate
    if certificate is None:
        return
    print()
    print(
        "certified retrieval bounds"
        + (" (widened — loose)" if certificate.widened else "")
        + ":"
    )
    for entry in certificate.bounds.values():
        cell = (
            str(entry.bound)
            if entry.certified
            else f"abstained ({entry.reason})"
        )
        print(f"  {entry.method:30s} {cell}")
    recommendation = report.recommendation
    if recommendation is not None:
        print()
        print(
            f"recommended plan: {recommendation.method} "
            f"[{recommendation.provenance}]"
        )
        reason = recommendation.details.get("reason")
        if reason:
            print(f"  {reason}")


def _cmd_analyze_cost(args) -> int:
    import json

    from .analysis.cost import run_cost_analysis

    program, database = _load(args.program, args.facts)
    report = run_cost_analysis(program, database)
    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    elif args.format == "sarif":
        print(
            json.dumps(
                report.to_sarif(artifact_uri=args.program),
                indent=2,
                sort_keys=True,
            )
        )
    else:
        _render_cost_report(report)
    counts = report.counts()
    print(
        f"-- {len(report.diagnostics)} finding(s), "
        f"{counts['error']} error(s), {counts['warning']} warning(s)",
        file=sys.stderr,
    )
    return 1 if report.exceeds(args.fail_on) else 0


def _cmd_analyze_all(args) -> int:
    """Run every analyzer in the repo and merge the findings.

    Static program lint, the certified cost-bound analyzer, and the
    program optimizer all run over the given program; the concurrency
    race detector self-analyzes this installation's ``repro`` package.
    ``--format sarif`` merges the four logs into one multi-run document
    (one ``runs[]`` entry per driver) for CI ingestion, and ``--fail-on``
    applies across the merged set.
    """
    import json
    from pathlib import Path

    import repro

    from .analysis.concurrency import run_concurrency_analysis
    from .analysis.cost import run_cost_analysis
    from .analysis.rewrite import optimize_program
    from .analysis.sarif import merge_sarif_logs
    from .analysis.static import run_static_analysis

    program, database = _load(args.program, args.facts)
    reports = [
        ("repro-lint", run_static_analysis(program, database)),
        ("repro-cost", run_cost_analysis(program, database)),
        ("repro-optimizer", optimize_program(program, database)),
        (
            "repro-lint-py",
            run_concurrency_analysis([str(Path(repro.__file__).parent)]),
        ),
    ]
    if args.format == "sarif":
        logs = []
        for name, report in reports:
            if name == "repro-lint-py":
                logs.append(report.to_sarif())
            else:
                logs.append(report.to_sarif(artifact_uri=args.program))
        print(json.dumps(merge_sarif_logs(logs), indent=2, sort_keys=True))
    elif args.format == "json":
        print(
            json.dumps(
                {name: report.to_json() for name, report in reports},
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for name, report in reports:
            print(f"== {name} ==")
            for diagnostic in report.diagnostics:
                print(diagnostic)
            print()
    failing = 0
    for name, report in reports:
        counts = report.counts()
        print(
            f"-- {name}: {len(report.diagnostics)} finding(s), "
            f"{counts['error']} error(s), {counts['warning']} warning(s)",
            file=sys.stderr,
        )
        if report.exceeds(args.fail_on):
            failing += 1
    return 1 if failing else 0


def cmd_analyze(args) -> int:
    if args.all:
        return _cmd_analyze_all(args)
    if args.cost:
        return _cmd_analyze_cost(args)
    program, database = _load(args.program, args.facts)
    query = _extract_query(program, database)
    classification = classify_nodes(query)
    stats = compute_statistics(query)
    print(f"goal: {program.query}")
    print(f"magic graph class: {classification.graph_class.value}")
    print(
        f"nodes: {stats.n_l} magic ({len(classification.single)} single, "
        f"{len(classification.multiple)} multiple, "
        f"{len(classification.recurring)} recurring), {stats.n_r} answer-side"
    )
    print(f"arcs: m_L={stats.m_l} m_E={stats.m_e} m_R={stats.m_r}")
    print(f"single-method frontier i_x = {stats.i_x}")
    print()
    print("reduced sets per strategy:")
    for strategy in Strategy:
        reduced = compute_reduced_sets(query.instance(), strategy)
        print(
            f"  {strategy.value:9s} |RC| = {len(reduced.rc):4d}   "
            f"|RM| = {len(reduced.rm):4d}"
        )
    print()
    print("predicted costs (paper's Θ-expressions, tuple retrievals):")
    for method, predicted in all_method_predictions(stats).items():
        cell = "unsafe" if predicted is None else str(predicted)
        print(f"  {method:26s} {cell}")
    from .analysis.static import (
        certify_counting_safety,
        method_admissibility,
        recommended,
    )

    certificate = certify_counting_safety(query)
    print()
    print(f"counting safety: {certificate.verdict} ({certificate.reason})")
    print("statically admissible methods:")
    for verdict in method_admissibility(certificate):
        print(f"  {verdict.describe()}")
    print(f"recommended method: {recommended(classification, certificate)}")
    if args.dot:
        from .analysis.dot import query_graph_to_dot

        with open(args.dot, "w") as handle:
            handle.write(query_graph_to_dot(query, title=str(program.query)))
        print(f"-- wrote query graph to {args.dot}", file=sys.stderr)
    return 0


def _rewritten(program: Program, database: Database, args) -> Program:
    """Apply the ``--kind``/``--rewrite`` program transformation."""
    kind = getattr(args, "kind", None) or args.rewrite
    if kind == "magic":
        return magic_rewrite(program)
    if kind == "supplementary":
        return supplementary_magic_rewrite(program)
    if kind == "counting":
        return counting_rewrite(program)
    # mc
    query = _extract_query(program, database)
    strategy = _STRATEGIES[args.strategy]
    mode = _MODES[args.mode]
    reduced = compute_reduced_sets(query.instance(), strategy)
    if mode is Mode.INTEGRATED:
        reduced.ensure_source_pair(query.source)
    return magic_counting_program(program, reduced, mode)


def cmd_rewrite(args) -> int:
    program, database = _load(args.program, args.facts)
    print(_rewritten(program, database, args))
    return 0


def _render_optimizer_diff(report) -> None:
    """Diff-style rendering: removed rules ``-``, added rules ``+``."""
    before = list(report.original.rules)
    after = list(report.program.rules)
    after_set = set(after)
    before_set = set(before)
    print(f"--- original ({len(before)} rules)")
    print(f"+++ optimized ({len(after)} rules)")
    for rule in before:
        if rule not in after_set:
            print(f"- {rule}")
    for rule in after:
        if rule not in before_set:
            print(f"+ {rule}")
    if not report.changed:
        print("(no change — the program is already optimal "
              "under the registered passes)")
    print()
    for trace in report.traces:
        print(f"[{trace.pass_name}#{trace.iteration}] "
              f"{trace.code}: {trace.message}")


def cmd_optimize(args) -> int:
    import json

    from .analysis.rewrite import optimize_program

    program, database = _load(args.program, args.facts)
    if args.rewrite != "none":
        program = _rewritten(program, database, args)
    report = optimize_program(program, database)
    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    elif args.format == "sarif":
        print(
            json.dumps(
                report.to_sarif(artifact_uri=args.program),
                indent=2,
                sort_keys=True,
            )
        )
    else:
        _render_optimizer_diff(report)
    summary = report.summary()
    print(
        f"-- {summary['rules_removed']} rule(s) removed, "
        f"{summary['rules_added']} added, "
        f"{summary['literals_removed']} literal(s) removed, "
        f"{summary['arguments_removed']} argument(s) sliced "
        f"in {summary['iterations']} iteration(s) "
        f"({summary['optimize_ms']:.1f} ms)",
        file=sys.stderr,
    )
    return 1 if report.exceeds(args.fail_on) else 0


def cmd_generate(args) -> int:
    """Emit a synthetic workload as program + facts files."""
    from .datalog.io import dump_database
    from .workloads.generators import (
        acyclic_workload,
        cyclic_workload,
        grid_workload,
        regular_workload,
    )

    generators = {
        "regular": regular_workload,
        "acyclic": acyclic_workload,
        "cyclic": cyclic_workload,
    }
    if args.kind == "grid":
        query = grid_workload(side=2 + args.scale)
    else:
        query = generators[args.kind](scale=args.scale, seed=args.seed)
    database = query.database()
    count = dump_database(database, args.output)
    program_text = str(query.to_program())
    program_path = args.output.rsplit(".", 1)[0] + ".program.dl"
    with open(program_path, "w") as handle:
        handle.write(program_text + "\n")
    print(f"wrote {count} facts to {args.output}", file=sys.stderr)
    print(f"wrote the query program to {program_path}", file=sys.stderr)
    return 0


def cmd_report(args) -> int:
    """Run the standard experiment set and print every table."""
    from .analysis.runner import ALL_METHODS, measure
    from .analysis.tables import render_table
    from .core.hierarchy import check_dominance, render_figure3
    from .workloads.generators import (
        acyclic_workload,
        cyclic_workload,
        regular_workload,
    )

    scale = args.scale
    rows = []
    for kind, generator in (
        ("regular", regular_workload),
        ("acyclic", acyclic_workload),
        ("cyclic", cyclic_workload),
    ):
        measurement = measure(generator(scale=scale, seed=args.seed))
        rows.append(measurement)
        violations = check_dominance(
            measurement.costs, measurement.graph_class, slack=1.7
        )
        status = "holds" if not violations else "; ".join(map(str, violations))
        print(f"{kind}: hierarchy {status}", file=sys.stderr)
    print(render_table(
        f"All methods, measured/predicted tuple retrievals "
        f"(scale {scale}, seed {args.seed})",
        ALL_METHODS,
        rows,
    ))
    print(render_figure3())
    return 0


def cmd_lint(args) -> int:
    import json

    from .analysis.static import run_static_analysis

    program, database = _load(args.program, args.facts)
    report = run_static_analysis(program, database)
    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    elif args.format == "sarif":
        print(
            json.dumps(
                report.to_sarif(artifact_uri=args.program),
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for diagnostic in report.diagnostics:
            print(diagnostic)
    counts = report.counts()
    print(
        f"-- {len(report.diagnostics)} finding(s), "
        f"{counts['error']} error(s)",
        file=sys.stderr,
    )
    if report.certificate is not None:
        print(
            f"-- counting safety: {report.certificate.verdict}",
            file=sys.stderr,
        )
    return 1 if report.exceeds(args.fail_on) else 0


def cmd_lint_py(args) -> int:
    import json

    from .analysis.concurrency import run_concurrency_analysis

    report = run_concurrency_analysis(args.paths)
    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    elif args.format == "sarif":
        print(json.dumps(report.to_sarif(), indent=2, sort_keys=True))
    else:
        for diagnostic in report.diagnostics:
            print(diagnostic)
    counts = report.counts()
    print(
        f"-- {len(report.files)} file(s), "
        f"{report.guarded_attributes} guarded attribute(s), "
        f"{len(report.diagnostics)} finding(s), "
        f"{counts['error']} error(s), "
        f"{report.suppressed} suppressed",
        file=sys.stderr,
    )
    return 1 if report.exceeds(args.fail_on) else 0


def cmd_explain(args) -> int:
    from .datalog.parser import parse_atom
    from .datalog.provenance import evaluate_with_provenance

    program, database = _load(args.program, args.facts)
    provenance = evaluate_with_provenance(program, database)
    goal = parse_atom(args.fact)
    if not goal.is_ground():
        raise ReproError(f"explain needs a ground fact, got {goal}")
    values = tuple(t.value for t in goal.terms)
    proof = provenance.proof(goal.predicate, values)
    print(proof.render())
    print(f"-- proof depth: {proof.depth()}", file=sys.stderr)
    print(f"-- leaves: {len(proof.leaves())}", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Magic counting methods for recursive Datalog queries "
        "(Sacca & Zaniolo, SIGMOD 1987).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub):
        sub.add_argument("program", help="Datalog program file with a ?- goal")
        sub.add_argument("--facts", help="separate file of ground facts")

    sub_solve = subparsers.add_parser("solve", help="answer the query goal")
    add_common(sub_solve)
    sub_solve.add_argument(
        "--method",
        default="auto",
        choices=["auto", "adaptive", "counting", "extended_counting",
                 "magic_set", "henschen_naqvi", "magic_counting", "naive"],
    )
    sub_solve.add_argument("--strategy", default="multiple",
                           choices=sorted(_STRATEGIES))
    sub_solve.add_argument("--mode", default="integrated",
                           choices=sorted(_MODES))
    sub_solve.set_defaults(handler=cmd_solve)

    sub_batch = subparsers.add_parser(
        "batch",
        help="answer the query shape for many bound constants through "
        "the plan-caching solver service",
    )
    add_common(sub_batch)
    sub_batch.add_argument(
        "--sources",
        help="comma-separated bound constants (default: the goal's)",
    )
    sub_batch.add_argument(
        "--sources-file", help="file with one bound constant per line"
    )
    sub_batch.add_argument(
        "--method",
        default="shared_magic",
        choices=["shared_magic", "counting", "adaptive"],
    )
    sub_batch.set_defaults(handler=cmd_batch)

    sub_serve = subparsers.add_parser(
        "serve",
        help="serve the program over NDJSON/TCP with request coalescing "
        "(GET /health and /metrics answer on the same port)",
    )
    add_common(sub_serve)
    sub_serve.add_argument("--host", default="127.0.0.1")
    sub_serve.add_argument(
        "--port", type=int, default=7411,
        help="TCP port (0 binds an ephemeral port)",
    )
    sub_serve.add_argument(
        "--window-ms", type=float, default=5.0,
        help="coalescing window: concurrent solves arriving within it "
        "share one batch (default 5ms)",
    )
    sub_serve.add_argument(
        "--max-batch", type=int, default=64,
        help="flush a window early once this many requests joined",
    )
    sub_serve.add_argument(
        "--max-pending", type=int, default=256,
        help="admission-control bound; overflow gets a structured "
        "'overloaded' error",
    )
    sub_serve.add_argument(
        "--deadline-ms", type=float, default=None,
        help="default per-request deadline (requests may override)",
    )
    sub_serve.add_argument(
        "--workers", type=int, default=0,
        help="spawn a repro.cluster fleet of N worker processes behind "
        "this port (0 = serve single-process, the default)",
    )
    sub_serve.add_argument(
        "--standbys", type=int, default=0,
        help="warm-standby workers promoted on active failure "
        "(cluster mode only)",
    )
    sub_serve.add_argument(
        "--executor-threads", type=int, default=2,
        help="batch-execution worker threads per process "
        "(was --workers before cluster mode claimed that name)",
    )
    sub_serve.add_argument(
        "--plan-cache-size", type=int, default=8,
        help="compiled-plan LRU capacity",
    )
    sub_serve.set_defaults(handler=cmd_serve)

    sub_analyze = subparsers.add_parser(
        "analyze", help="diagnose the magic graph and predict costs"
    )
    add_common(sub_analyze)
    sub_analyze.add_argument(
        "--dot", help="also write the query graph as Graphviz DOT"
    )
    sub_analyze.add_argument(
        "--cost", action="store_true",
        help="run the static cost-bound analyzer instead: certified "
        "per-method retrieval bounds and the bound-ranked plan choice",
    )
    sub_analyze.add_argument(
        "--all", action="store_true",
        help="run every analyzer (program lint, cost bounds, optimizer, "
        "concurrency self-analysis) and merge the findings; with "
        "--format sarif one multi-run log with one runs[] entry per "
        "analyzer",
    )
    sub_analyze.add_argument(
        "--format", default="text", choices=["text", "json", "sarif"],
        help="output format for --cost/--all (sarif emits SARIF 2.1.0 "
        "for CI)",
    )
    sub_analyze.add_argument(
        "--fail-on", dest="fail_on", default="error",
        choices=["error", "warning"],
        help="with --cost/--all: lowest severity that forces a non-zero "
        "exit",
    )
    sub_analyze.set_defaults(handler=cmd_analyze)

    sub_rewrite = subparsers.add_parser(
        "rewrite", help="print a rewritten program"
    )
    add_common(sub_rewrite)
    sub_rewrite.add_argument(
        "--kind", default="magic",
        choices=["magic", "supplementary", "counting", "mc"],
    )
    sub_rewrite.add_argument("--strategy", default="multiple",
                             choices=sorted(_STRATEGIES))
    sub_rewrite.add_argument("--mode", default="integrated",
                             choices=sorted(_MODES))
    sub_rewrite.set_defaults(handler=cmd_rewrite)

    sub_optimize = subparsers.add_parser(
        "optimize",
        help="run the semantics-preserving program optimizer and print "
        "a diff-style report",
    )
    add_common(sub_optimize)
    sub_optimize.add_argument(
        "--rewrite", default="none",
        choices=["none", "magic", "supplementary", "counting", "mc"],
        help="first apply this rewrite, then optimize its output "
        "(the optimizer's main use: cleaning rewrite-emitted programs)",
    )
    sub_optimize.add_argument("--strategy", default="multiple",
                              choices=sorted(_STRATEGIES))
    sub_optimize.add_argument("--mode", default="integrated",
                              choices=sorted(_MODES))
    sub_optimize.add_argument(
        "--format", default="text", choices=["text", "json", "sarif"],
        help="output format (sarif emits a SARIF 2.1.0 log for CI)",
    )
    sub_optimize.add_argument(
        "--fail-on", dest="fail_on", default="error",
        choices=["error", "warning"],
        help="lowest severity that forces a non-zero exit code "
        "(optimizer traces are info-level, so this exits 0 by default)",
    )
    sub_optimize.set_defaults(handler=cmd_optimize)

    sub_explain = subparsers.add_parser(
        "explain", help="print a proof tree for a ground fact"
    )
    add_common(sub_explain)
    sub_explain.add_argument(
        "fact", help="ground fact to explain, e.g. 'sg(ann, bob)'"
    )
    sub_explain.set_defaults(handler=cmd_explain)

    sub_lint = subparsers.add_parser(
        "lint", help="static diagnostics for a program"
    )
    add_common(sub_lint)
    sub_lint.add_argument(
        "--format", default="text", choices=["text", "json", "sarif"],
        help="output format (sarif emits a SARIF 2.1.0 log for CI)",
    )
    sub_lint.add_argument(
        "--fail-on", dest="fail_on", default="error",
        choices=["error", "warning"],
        help="lowest severity that forces a non-zero exit code",
    )
    sub_lint.set_defaults(handler=cmd_lint)

    sub_lint_py = subparsers.add_parser(
        "lint-py",
        help="concurrency race detector for this repo's Python sources",
    )
    sub_lint_py.add_argument(
        "paths", nargs="+",
        help="Python files or directories to analyze (e.g. src/repro)",
    )
    sub_lint_py.add_argument(
        "--format", default="text", choices=["text", "json", "sarif"],
        help="output format (sarif emits a SARIF 2.1.0 log for CI)",
    )
    sub_lint_py.add_argument(
        "--fail-on", dest="fail_on", default="error",
        choices=["error", "warning"],
        help="lowest severity that forces a non-zero exit code",
    )
    sub_lint_py.set_defaults(handler=cmd_lint_py)

    sub_repl = subparsers.add_parser(
        "repl", help="interactive deductive-database shell"
    )
    sub_repl.set_defaults(handler=lambda args: _run_repl())

    sub_report = subparsers.add_parser(
        "report", help="run the standard experiments and print the tables"
    )
    sub_report.add_argument("--scale", type=int, default=2)
    sub_report.add_argument("--seed", type=int, default=0)
    sub_report.set_defaults(handler=cmd_report)

    sub_generate = subparsers.add_parser(
        "generate", help="emit a synthetic workload as Datalog files"
    )
    sub_generate.add_argument(
        "--kind", default="regular",
        choices=["regular", "acyclic", "cyclic", "grid"],
    )
    sub_generate.add_argument("--scale", type=int, default=2)
    sub_generate.add_argument("--seed", type=int, default=0)
    sub_generate.add_argument(
        "-o", "--output", default="workload.dl",
        help="facts file to write (program goes to *.program.dl)",
    )
    sub_generate.set_defaults(handler=cmd_generate)
    return parser


def _run_repl() -> int:  # pragma: no cover - interactive
    from .repl import run_repl

    return run_repl()


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
